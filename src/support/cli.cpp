#include "support/cli.hpp"

#include <cstdio>
#include <sstream>

#include "support/error.hpp"

namespace mosaic {

CliParser::CliParser(std::string programName, std::string description)
    : program_(std::move(programName)), description_(std::move(description)) {}

void CliParser::add(const std::string& name, Kind kind, void* target,
                    const std::string& help, std::string defaultValue) {
  MOSAIC_CHECK(!name.empty(), "option name must not be empty");
  MOSAIC_CHECK(options_.find(name) == options_.end(),
               "duplicate option --" << name);
  options_[name] = Option{kind, target, help, std::move(defaultValue)};
  order_.push_back(name);
}

void CliParser::addInt(const std::string& name, int* target,
                       const std::string& help) {
  add(name, Kind::kInt, target, help, std::to_string(*target));
}

void CliParser::addDouble(const std::string& name, double* target,
                          const std::string& help) {
  std::ostringstream os;
  os << *target;
  add(name, Kind::kDouble, target, help, os.str());
}

void CliParser::addString(const std::string& name, std::string* target,
                          const std::string& help) {
  add(name, Kind::kString, target, help, *target);
}

void CliParser::addFlag(const std::string& name, bool* target,
                        const std::string& help) {
  add(name, Kind::kFlag, target, help, *target ? "true" : "false");
}

void CliParser::assign(const std::string& name, const std::string& value) {
  auto it = options_.find(name);
  MOSAIC_CHECK(it != options_.end(), "unknown option --" << name);
  Option& opt = it->second;
  try {
    switch (opt.kind) {
      case Kind::kInt:
        *static_cast<int*>(opt.target) = std::stoi(value);
        break;
      case Kind::kDouble:
        *static_cast<double*>(opt.target) = std::stod(value);
        break;
      case Kind::kString:
        *static_cast<std::string*>(opt.target) = value;
        break;
      case Kind::kFlag:
        if (value == "true" || value == "1" || value == "yes") {
          *static_cast<bool*>(opt.target) = true;
        } else if (value == "false" || value == "0" || value == "no") {
          *static_cast<bool*>(opt.target) = false;
        } else {
          throw InvalidArgument("boolean flag --" + name +
                                " expects true/false, got: " + value);
        }
        break;
    }
  } catch (const std::invalid_argument&) {
    throw InvalidArgument("bad value for --" + name + ": " + value);
  } catch (const std::out_of_range&) {
    throw InvalidArgument("value out of range for --" + name + ": " + value);
  }
}

bool CliParser::parse(int argc, const char* const* argv) {
  try {
    return parseImpl(argc, argv);
  } catch (const InvalidArgument& e) {
    // Malformed invocations get the usage screen on stderr so the shell
    // user sees what was expected; the exception still propagates and the
    // apps' main() turns it into a non-zero exit.
    std::fprintf(stderr, "%s: %s\n\n%s", program_.c_str(), e.what(),
                 usage().c_str());
    throw;
  }
}

bool CliParser::parseImpl(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    MOSAIC_CHECK(arg.rfind("--", 0) == 0, "expected --option, got: " << arg);
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      assign(arg.substr(0, eq), arg.substr(eq + 1));
      continue;
    }
    auto it = options_.find(arg);
    MOSAIC_CHECK(it != options_.end(), "unknown option --" << arg);
    if (it->second.kind == Kind::kFlag) {
      *static_cast<bool*>(it->second.target) = true;
      continue;
    }
    MOSAIC_CHECK(i + 1 < argc, "missing value for --" << arg);
    assign(arg, argv[++i]);
  }
  return true;
}

std::string CliParser::usage() const {
  std::ostringstream os;
  os << program_ << " -- " << description_ << "\n\noptions:\n";
  for (const auto& name : order_) {
    const Option& opt = options_.at(name);
    os << "  --" << name;
    switch (opt.kind) {
      case Kind::kInt:
        os << " <int>";
        break;
      case Kind::kDouble:
        os << " <float>";
        break;
      case Kind::kString:
        os << " <string>";
        break;
      case Kind::kFlag:
        break;
    }
    os << "  " << opt.help << " (default: " << opt.defaultValue << ")\n";
  }
  return os.str();
}

}  // namespace mosaic
