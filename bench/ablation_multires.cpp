/// \file ablation_multires.cpp
/// Coarse-to-fine acceleration study: compare single-resolution MOSAIC_fast
/// (20 fine iterations) against the multiresolution flow (14 coarse + 6
/// fine) at matched quality targets. Coarse iterations are ~factor^2
/// cheaper, so the multires flow should approach single-res quality at a
/// fraction of the runtime.

#include <cstdio>
#include <exception>
#include <string>

#include "eval/evaluator.hpp"
#include "geometry/raster.hpp"
#include "litho/simulator.hpp"
#include "opc/multires.hpp"
#include "suite/testcases.hpp"
#include "support/cli.hpp"
#include "support/log.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace mosaic;
  int pixel = 4;
  std::string cases = "2,4,10";
  std::string logLevel = "warn";

  CliParser cli("ablation_multires",
                "single-resolution vs coarse-to-fine MOSAIC_fast");
  cli.addInt("pixel", &pixel, "fine pixel size in nm");
  cli.addString("cases", &cases, "comma-separated testcase indices");
  cli.addString("log", &logLevel, "log level");
  try {
    if (!cli.parse(argc, argv)) return 0;
    setLogLevel(parseLogLevel(logLevel));

    OpticsConfig fineOptics;
    fineOptics.pixelNm = pixel;
    LithoSimulator fineSim(fineOptics);
    OpticsConfig coarseOptics = fineOptics;
    coarseOptics.pixelNm = pixel * 2;
    LithoSimulator coarseSim(coarseOptics);
    // Pay kernel generation up-front so runtimes compare optimizers only.
    fineSim.kernels(0.0);
    fineSim.kernels(25.0);
    coarseSim.kernels(0.0);
    coarseSim.kernels(25.0);

    TextTable table;
    table.setHeader({"case", "flow", "#EPE", "PVB(nm^2)", "score",
                     "runtime(s)"});
    std::string rest = cases;
    while (!rest.empty()) {
      const auto comma = rest.find(',');
      const int caseIdx = std::stoi(rest.substr(0, comma));
      rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
      const Layout layout = buildTestcase(caseIdx);
      const BitGrid target = rasterize(layout, pixel);

      {
        IltConfig cfg = defaultIltConfig(OpcMethod::kMosaicFast, pixel);
        cfg.maxIterations = 20;
        const OpcResult res =
            runOpc(fineSim, target, OpcMethod::kMosaicFast, &cfg);
        const CaseEvaluation ev =
            evaluateMask(fineSim, res.maskTwoLevel, target, res.runtimeSec);
        table.addRow({layout.name, "single-res",
                      TextTable::integer(ev.epeViolations),
                      TextTable::num(ev.pvbandAreaNm2, 0),
                      TextTable::num(ev.score, 0),
                      TextTable::num(res.runtimeSec, 2)});
      }
      {
        const OpcResult res = runOpcMultires(coarseSim, fineSim, target,
                                             OpcMethod::kMosaicFast);
        const CaseEvaluation ev =
            evaluateMask(fineSim, res.maskTwoLevel, target, res.runtimeSec);
        table.addRow({layout.name, "multires",
                      TextTable::integer(ev.epeViolations),
                      TextTable::num(ev.pvbandAreaNm2, 0),
                      TextTable::num(ev.score, 0),
                      TextTable::num(res.runtimeSec, 2)});
      }
    }
    std::printf("=== Ablation: coarse-to-fine ILT (MOSAIC_fast) ===\n%s\n",
                table.render().c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ablation_multires failed: %s\n", e.what());
    return 1;
  }
}
