# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_support "/root/repo/build/tests/test_support")
set_tests_properties(test_support PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;10;mosaic_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_math "/root/repo/build/tests/test_math")
set_tests_properties(test_math PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;11;mosaic_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_geometry "/root/repo/build/tests/test_geometry")
set_tests_properties(test_geometry PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;12;mosaic_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_litho "/root/repo/build/tests/test_litho")
set_tests_properties(test_litho PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;13;mosaic_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_opc "/root/repo/build/tests/test_opc")
set_tests_properties(test_opc PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;14;mosaic_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_eval "/root/repo/build/tests/test_eval")
set_tests_properties(test_eval PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;15;mosaic_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_suite "/root/repo/build/tests/test_suite")
set_tests_properties(test_suite PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;16;mosaic_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;17;mosaic_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_io "/root/repo/build/tests/test_io")
set_tests_properties(test_io PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;18;mosaic_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_contour_mrc "/root/repo/build/tests/test_contour_mrc")
set_tests_properties(test_contour_mrc PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;19;mosaic_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_opc_methods "/root/repo/build/tests/test_opc_methods")
set_tests_properties(test_opc_methods PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;20;mosaic_test;/root/repo/tests/CMakeLists.txt;0;")
