/// \file quickstart.cpp
/// Minimal end-to-end tour of the MOSAIC library:
///   1. build a benchmark clip,
///   2. simulate how it would print with no correction,
///   3. run MOSAIC_fast mask optimization,
///   4. evaluate both masks with the contest metrics,
///   5. dump images for inspection.
///
/// Run:  ./quickstart --case 4 --pixel 4 --out /tmp

#include <cstdio>
#include <exception>
#include <string>

#include "eval/evaluator.hpp"
#include "geometry/raster.hpp"
#include "litho/simulator.hpp"
#include "opc/baselines.hpp"
#include "opc/mosaic.hpp"
#include "suite/testcases.hpp"
#include "support/cli.hpp"
#include "support/image_io.hpp"
#include "support/log.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  using namespace mosaic;
  int caseIndex = 4;
  int pixel = 4;
  int iterations = 20;
  std::string outDir = "/tmp";
  std::string logLevel = "info";

  CliParser cli("quickstart", "MOSAIC end-to-end quickstart");
  cli.addInt("case", &caseIndex, "testcase index (1..10)");
  cli.addInt("pixel", &pixel, "pixel size in nm (1/2/4/8)");
  cli.addInt("iters", &iterations, "optimizer iterations");
  cli.addString("out", &outDir, "output directory for PGM dumps");
  cli.addString("log", &logLevel, "log level (debug/info/warn/error)");
  try {
    if (!cli.parse(argc, argv)) return 0;
    setLogLevel(parseLogLevel(logLevel));

    // 1. A benchmark clip (1024 x 1024 nm of 32 nm-node style M1 shapes).
    const Layout layout = buildTestcase(caseIndex);
    const BitGrid target = rasterize(layout, pixel);
    std::printf("clip %s: %zu rects, pattern area %lld nm^2\n",
                layout.name.c_str(), layout.rects.size(),
                layout.patternArea());

    // 2. Forward simulation of the uncorrected target.
    OpticsConfig optics;
    optics.pixelNm = pixel;
    LithoSimulator sim(optics);
    const RealGrid plainMask = noOpcMask(target);
    const CaseEvaluation before = evaluateMask(sim, plainMask, target, 0.0);
    std::printf("no OPC    : EPE violations %d, PV band %.0f nm^2, score %.0f\n",
                before.epeViolations, before.pvbandAreaNm2, before.score);

    // 3. MOSAIC_fast inverse lithography.
    IltConfig cfg = defaultIltConfig(OpcMethod::kMosaicFast, pixel);
    cfg.maxIterations = iterations;
    WallTimer timer;
    const OpcResult opc =
        runOpc(sim, target, OpcMethod::kMosaicFast, &cfg);

    // 4. Contest-style evaluation of the optimized (binarized) mask.
    const CaseEvaluation after = evaluateMask(
        sim, toReal(opc.maskBinary), target, opc.runtimeSec);
    std::printf("MOSAIC_fast: EPE violations %d, PV band %.0f nm^2, score %.0f"
                " (%.1f s)\n",
                after.epeViolations, after.pvbandAreaNm2, after.score,
                timer.seconds());

    // 5. Dump target / mask / nominal print / PV band as PGM images.
    const int n = sim.gridSize();
    auto dump = [&](const std::string& name, const RealGrid& img) {
      const std::string path = outDir + "/" + layout.name + "_" + name + ".pgm";
      writePgm(path, {img.data(), img.size()}, n, n);
      std::printf("wrote %s\n", path.c_str());
    };
    dump("target", toReal(target));
    dump("mask", toReal(opc.maskBinary));
    dump("nominal",
         toReal(sim.print(toReal(opc.maskBinary), nominalCorner())));
    const PvBandResult pvb =
        computePvBand(sim, toReal(opc.maskBinary), evaluationCorners());
    dump("pvband", toReal(pvb.band));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "quickstart failed: %s\n", e.what());
    return 1;
  }
}
