#pragma once
/// \file mosaic.hpp
/// Top-level facade: run MOSAIC_fast / MOSAIC_exact (paper Eq. 19-20) or
/// the conventional-ILT baseline on a target raster and get back the
/// optimized mask plus telemetry. This is the primary public entry point
/// of the library.

#include <string>

#include "litho/simulator.hpp"
#include "opc/optimizer.hpp"
#include "opc/sraf.hpp"

namespace mosaic {

/// The two MOSAIC operating modes plus the baseline formulation.
enum class OpcMethod {
  kMosaicFast,   ///< F = alpha F_id(gamma=4) + beta F_pvb   (Eq. 20)
  kMosaicExact,  ///< F = alpha F_epe + beta F_pvb           (Eq. 19)
  kIltBaseline,  ///< F = F_id(gamma=2), no process-window term
};

[[nodiscard]] std::string methodName(OpcMethod method);

/// Default ILT configuration for a method at a given pixel size. The
/// alpha/beta weights follow the contest scoring ratio (Eq. 22): EPE
/// violations are worth 5000 each and PV-band area 4 per nm^2; the
/// F_id / F_pvb pixel sums are scaled by the pixel area so results are
/// resolution-independent.
[[nodiscard]] IltConfig defaultIltConfig(OpcMethod method, int pixelNm);

struct OpcResult {
  std::string method;
  RealGrid maskContinuous;  ///< best continuous mask from the optimizer
  BitGrid maskBinary;       ///< feature raster (upper transmission level)
  /// Two-level transmission mask {maskLow, maskHigh}; identical to
  /// toReal(maskBinary) for binary masks, carries the negative background
  /// for PSM configurations. Use this for simulation/evaluation.
  RealGrid maskTwoLevel;
  std::vector<IterationRecord> history;
  double runtimeSec = 0.0;
  int iterations = 0;
  bool converged = false;
  StopReason stopReason = StopReason::kMaxIterations;
  int nonFiniteEvents = 0;  ///< non-finite evaluations seen by the optimizer
  int recoveries = 0;       ///< rollback recoveries performed
};

/// Run an OPC method end to end: SRAF initialization (Alg. 1 line 2),
/// gradient-descent ILT, binarization. `configOverride` (optional) replaces
/// the method's default IltConfig; `sraf` controls initialization;
/// `callback` observes every iteration (used by the convergence bench);
/// `optimizeOptions` controls checkpointing/resume (docs/robustness.md).
OpcResult runOpc(const LithoSimulator& sim, const BitGrid& target,
                 OpcMethod method, const IltConfig* configOverride = nullptr,
                 const SrafConfig& sraf = {},
                 const IterationCallback& callback = {},
                 const OptimizeOptions& optimizeOptions = {});

}  // namespace mosaic
