file(REMOVE_RECURSE
  "CMakeFiles/ablation_aberrations.dir/ablation_aberrations.cpp.o"
  "CMakeFiles/ablation_aberrations.dir/ablation_aberrations.cpp.o.d"
  "ablation_aberrations"
  "ablation_aberrations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_aberrations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
