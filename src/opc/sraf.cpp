#include "opc/sraf.hpp"

#include "geometry/bitmap_ops.hpp"
#include "support/error.hpp"

namespace mosaic {

BitGrid srafBand(const BitGrid& target, int pixelNm, const SrafConfig& config) {
  MOSAIC_CHECK(pixelNm > 0, "pixel size must be positive");
  MOSAIC_CHECK(config.minDistanceNm > 0 &&
                   config.maxDistanceNm > config.minDistanceNm,
               "SRAF band needs 0 < min < max distance");
  const int minPx = config.minDistanceNm / pixelNm;
  const int maxPx = config.maxDistanceNm / pixelNm;
  MOSAIC_CHECK(minPx >= 1, "SRAF distance below one pixel");

  BitGrid band = bitSub(dilateSquare(target, maxPx), dilateSquare(target, minPx));

  // Keep-out at the clip border (the optical model wraps cyclically).
  const int margin = config.clipMarginNm / pixelNm;
  if (margin > 0) {
    const int rows = band.rows();
    const int cols = band.cols();
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        if (r < margin || r >= rows - margin || c < margin ||
            c >= cols - margin) {
          band(r, c) = 0u;
        }
      }
    }
  }
  return band;
}

BitGrid insertSraf(const BitGrid& target, int pixelNm,
                   const SrafConfig& config) {
  if (!config.enabled) return target;
  return bitOr(target, srafBand(target, pixelNm, config));
}

}  // namespace mosaic
