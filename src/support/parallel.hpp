#pragma once
/// \file parallel.hpp
/// A small thread pool plus parallelFor helper. On single-core hosts the
/// pool degrades to serial execution with no thread overhead, so library
/// code can call parallelFor unconditionally.

#include <cstddef>
#include <functional>

namespace mosaic {

/// Number of worker threads the global pool uses (>= 1).
int hardwareParallelism();

/// Override the global worker count (0 restores the hardware default).
/// Must be called before the first parallelFor of the process to take
/// effect deterministically.
void setParallelism(int workers);

/// Run fn(i) for i in [begin, end). Iterations are distributed over the
/// global pool in contiguous chunks; the call returns after all complete.
/// fn must be safe to call concurrently for distinct i. Exceptions thrown
/// by fn are rethrown on the calling thread (first one wins).
///
/// Nesting: a parallelFor issued from inside another parallelFor's body
/// runs serially on the calling worker instead of spawning threads. This
/// keeps the worker count bounded at the outer level (no thread explosion
/// when library code under a parallel region also calls parallelFor) and
/// is the documented contract the tile scheduler relies on.
void parallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn);

/// True while the calling thread is executing inside a parallelFor body
/// (i.e. a nested parallelFor would degrade to serial). Exposed for tests.
bool inParallelRegion();

/// Register a hook that worker threads run right before they exit, for
/// thread-local cleanup that must not outlive the thread (the scratch
/// grid pool registers scratch::clearThreadPool here — without it every
/// dead worker pins up to 6 cached full-size grids forever). Hooks run in
/// registration order on each pool-spawned thread; the calling thread of
/// a parallelFor is not torn down (it lives on). Long-lived daemon
/// workers (serve) call runWorkerTeardowns() themselves on loop exit.
void registerWorkerTeardown(void (*hook)());

/// Run every registered teardown hook on the calling thread.
void runWorkerTeardowns();

}  // namespace mosaic
