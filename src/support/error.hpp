#pragma once
/// \file error.hpp
/// Error handling primitives for the MOSAIC library.
///
/// All precondition and invariant failures throw mosaic::Error so that
/// callers (examples, benches, tests) can report a readable message instead
/// of crashing. The MOSAIC_CHECK macro is used for conditions that depend on
/// user input; MOSAIC_ASSERT for internal invariants (still active in
/// release builds -- this is an EDA tool, silent corruption is worse than a
/// small branch cost).

#include <sstream>
#include <stdexcept>
#include <string>

namespace mosaic {

/// Base exception for all errors raised by the MOSAIC library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a user-supplied argument or configuration is invalid.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Raised when an internal invariant is violated (a library bug).
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throwCheckFailure(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " -- " << msg;
  throw InvalidArgument(os.str());
}

[[noreturn]] inline void throwAssertFailure(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  std::ostringstream os;
  os << "internal invariant violated: " << expr << " at " << file << ":"
     << line;
  if (!msg.empty()) os << " -- " << msg;
  throw InternalError(os.str());
}
}  // namespace detail

}  // namespace mosaic

/// Validate a user-facing precondition; throws mosaic::InvalidArgument.
#define MOSAIC_CHECK(expr, msg)                                        \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::mosaic::detail::throwCheckFailure(#expr, __FILE__, __LINE__,   \
                                          (std::ostringstream{} << msg) \
                                              .str());                 \
    }                                                                  \
  } while (false)

/// Validate an internal invariant; throws mosaic::InternalError.
#define MOSAIC_ASSERT(expr, msg)                                        \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::mosaic::detail::throwAssertFailure(#expr, __FILE__, __LINE__,   \
                                           (std::ostringstream{} << msg) \
                                               .str());                 \
    }                                                                   \
  } while (false)
