#include "geometry/polygon.hpp"

#include <algorithm>
#include <map>

#include "support/error.hpp"

namespace mosaic {

long long PolygonNm::signedArea() const {
  const std::size_t n = vertices.size();
  long long twice = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const PointNm& a = vertices[i];
    const PointNm& b = vertices[(i + 1) % n];
    twice += static_cast<long long>(a.x) * b.y -
             static_cast<long long>(b.x) * a.y;
  }
  return twice / 2;
}

long long PolygonNm::area() const {
  const long long s = signedArea();
  return s < 0 ? -s : s;
}

void PolygonNm::validate() const {
  MOSAIC_CHECK(vertices.size() >= 4,
               "rectilinear polygon needs >= 4 vertices, got "
                   << vertices.size());
  MOSAIC_CHECK(vertices.size() % 2 == 0,
               "rectilinear polygon needs an even vertex count");
  const std::size_t n = vertices.size();
  for (std::size_t i = 0; i < n; ++i) {
    const PointNm& a = vertices[i];
    const PointNm& b = vertices[(i + 1) % n];
    const bool horizontal = a.y == b.y && a.x != b.x;
    const bool vertical = a.x == b.x && a.y != b.y;
    MOSAIC_CHECK(horizontal || vertical,
                 "edge " << i << " is not axis-parallel or is degenerate");
  }
  MOSAIC_CHECK(area() > 0, "polygon has zero area");
}

std::vector<RectNm> decomposeRectilinear(const PolygonNm& polygon) {
  polygon.validate();
  const std::size_t n = polygon.vertices.size();

  // Vertical edges as (x, yLow, yHigh).
  struct VEdge {
    int x, y0, y1;
  };
  std::vector<VEdge> vedges;
  std::vector<int> ys;
  for (std::size_t i = 0; i < n; ++i) {
    const PointNm& a = polygon.vertices[i];
    const PointNm& b = polygon.vertices[(i + 1) % n];
    ys.push_back(a.y);
    if (a.x == b.x) {
      vedges.push_back({a.x, std::min(a.y, b.y), std::max(a.y, b.y)});
    }
  }
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());

  // One slab per adjacent y pair; parity scan over crossing vertical edges.
  // Slab rectangles are then merged vertically when their x-interval
  // repeats in the next slab (produces maximal-height rects).
  std::vector<RectNm> result;
  // Open rectangles from previous slabs keyed by x-interval.
  std::map<std::pair<int, int>, RectNm> open;
  for (std::size_t s = 0; s + 1 < ys.size(); ++s) {
    const int y0 = ys[s];
    const int y1 = ys[s + 1];
    std::vector<int> xs;
    for (const auto& e : vedges) {
      if (e.y0 <= y0 && e.y1 >= y1) xs.push_back(e.x);
    }
    std::sort(xs.begin(), xs.end());
    MOSAIC_CHECK(xs.size() % 2 == 0,
                 "odd crossing count in slab [" << y0 << "," << y1
                                                << "): non-simple polygon?");
    std::map<std::pair<int, int>, RectNm> next;
    for (std::size_t i = 0; i + 1 < xs.size(); i += 2) {
      const std::pair<int, int> key{xs[i], xs[i + 1]};
      auto it = open.find(key);
      if (it != open.end() && it->second.y1 == y0) {
        // Extend the open rectangle through this slab.
        RectNm extended = it->second;
        extended.y1 = y1;
        next.emplace(key, extended);
        open.erase(it);
      } else {
        next.emplace(key, RectNm{key.first, y0, key.second, y1});
      }
    }
    // Anything left open cannot be extended; emit it.
    for (auto& [key, rect] : open) result.push_back(rect);
    open = std::move(next);
  }
  for (auto& [key, rect] : open) result.push_back(rect);

  // Sanity: decomposed area equals polygon area.
  long long total = 0;
  for (const auto& r : result) total += r.area();
  MOSAIC_ASSERT(total == polygon.area(),
                "decomposition area " << total << " != polygon area "
                                      << polygon.area());
  return result;
}

PolygonNm toPolygon(const RectNm& rect) {
  MOSAIC_CHECK(rect.valid(), "invalid rectangle");
  PolygonNm poly;
  poly.vertices = {{rect.x0, rect.y0},
                   {rect.x1, rect.y0},
                   {rect.x1, rect.y1},
                   {rect.x0, rect.y1}};
  return poly;
}

}  // namespace mosaic
