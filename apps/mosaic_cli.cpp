/// \file mosaic_cli.cpp
/// The `mosaic_cli` command-line tool: run OPC on GLP layouts or built-in
/// benchmark clips, simulate masks through the lithography model, evaluate
/// contest metrics, check mask rules, and export the benchmark suite.
///
/// Subcommands:
///   run           OPC a target layout and write the optimized mask
///   batch         fault-tolerant OPC over the whole benchmark suite
///   chip          full-chip OPC: tile, optimize in parallel, stitch
///   simulate      forward-simulate a mask at a process corner
///   evaluate      contest metrics + MRC for a mask against a target
///   export-suite  write the built-in clips B1..B10 as GLP files
///
/// Examples:
///   mosaic_cli run --case 4 --method exact --out-mask /tmp/b4_mask.glp
///   mosaic_cli run --input clip.glp --method fast --images /tmp
///   mosaic_cli run --case 2 --checkpoint /tmp/b2.ckpt --checkpoint-every 5
///   mosaic_cli run --case 2 --resume /tmp/b2.ckpt
///   mosaic_cli batch --method fast --retries 1
///   mosaic_cli chip --input die.glp --chip-size 4096 --threads 8
///   mosaic_cli chip --case 1 --replicate 2 --pixel 8 --tile-size 1024
///   mosaic_cli simulate --input /tmp/b4_mask.glp --focus 25 --dose 0.98
///   mosaic_cli evaluate --input /tmp/b4_mask.glp --target-case 4
///   mosaic_cli export-suite --dir /tmp/suite
///   mosaic_cli submit --port-file /tmp/serve/serve.port --case B3 --wait
///
/// Fault injection for robustness testing is armed via the
/// MOSAIC_FAILPOINTS environment variable or the --failpoints option of
/// `run` and `batch` (see docs/robustness.md).
///
/// The long-running subcommands (run, batch, chip) handle SIGINT/SIGTERM
/// gracefully: in-flight work is checkpointed (when checkpointing is
/// armed), a resume hint is printed, and the process exits with code 3 so
/// scripts can tell an interrupt from success (0) and failures (1/2). See
/// docs/serving.md for the daemon-side story.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "eval/evaluator.hpp"
#include "eval/mrc.hpp"
#include "geometry/bitmap_ops.hpp"
#include "geometry/contour.hpp"
#include "geometry/raster.hpp"
#include "io/glp.hpp"
#include "litho/simulator.hpp"
#include "math/backend.hpp"
#include "opc/baselines.hpp"
#include "opc/edge_opc.hpp"
#include "opc/levelset.hpp"
#include "opc/mosaic.hpp"
#include "serve/job.hpp"
#include "suite/testcases.hpp"
#include "support/cli.hpp"
#include "support/failpoint.hpp"
#include "support/image_io.hpp"
#include "support/log.hpp"
#include "support/parallel.hpp"
#include "support/signal.hpp"
#include "support/socket.hpp"
#include "support/table.hpp"
#include "support/telemetry/jsonin.hpp"
#include "support/telemetry/metrics.hpp"
#include "support/telemetry/runlog.hpp"
#include "support/telemetry/trace.hpp"
#include "support/timer.hpp"
#include "tile/scheduler.hpp"

namespace {

using namespace mosaic;

/// Apply --threads: 0 keeps the hardware default. The count sizes the
/// process-wide work-stealing executor (docs/performance.md): one pool
/// shared by the tile fan-out and every nested pixel/corner loop, not a
/// per-loop thread spawn.
void applyThreads(int threads) {
  MOSAIC_CHECK(threads >= 0, "--threads must be >= 0");
  if (threads > 0) setParallelism(threads);
}

constexpr const char* kThreadsHelp =
    "total executor workers shared by tile and nested pixel loops "
    "(0 = hardware default)";

/// Apply --backend: resolve the name and install it process-wide (the
/// library default is cpu_scalar; the apps default to auto-detection).
void applyBackend(const std::string& name) {
  const exec::Backend* backend = exec::findBackend(name);
  MOSAIC_CHECK(backend != nullptr, "unknown --backend '"
                                       << name << "' (expected one of: "
                                       << exec::backendNames() << ")");
  exec::setCurrentBackend(*backend);
}

constexpr const char* kBackendHelp =
    "execution backend: auto | cpu_scalar | cpu_simd | cpu_simd_f32";

/// Shared telemetry wiring of the long-running subcommands
/// (docs/observability.md): --metrics-out, --trace-out, --run-log and
/// --log-format. begin() arms the sinks after CLI parsing; finish() flushes
/// the trace and the metrics snapshot (stamped with the process resource
/// usage) and prints the end-of-run summary table.
struct TelemetryFlags {
  std::string metricsOut;
  std::string traceOut;
  std::string runLogPath;
  std::string logFormat = "text";

  void addOptions(CliParser& cli) {
    cli.addString("metrics-out", &metricsOut,
                  "write the metrics snapshot (JSON) here at exit");
    cli.addString("trace-out", &traceOut,
                  "write a Chrome trace_event JSON (Perfetto-loadable) here");
    cli.addString("run-log", &runLogPath,
                  "append one JSONL telemetry record per iteration/tile here");
    cli.addString("log-format", &logFormat, "log sink format: text | json");
  }

  [[nodiscard]] std::unique_ptr<telemetry::RunLog> begin() const {
    setLogFormat(parseLogFormat(logFormat));
    if (!traceOut.empty()) telemetry::setTraceEnabled(true);
    if (runLogPath.empty()) return nullptr;
    return std::make_unique<telemetry::RunLog>(runLogPath);
  }

  void finish(const telemetry::RunLog* runLog) const {
    if (!traceOut.empty()) {
      telemetry::writeChromeTrace(traceOut);
      std::printf("wrote trace (%llu spans) to %s\n",
                  static_cast<unsigned long long>(telemetry::traceEventCount()),
                  traceOut.c_str());
    }
    if (runLog) {
      std::printf("wrote %lld run-log records to %s\n",
                  runLog->recordsWritten(), runLog->path().c_str());
    }
    if (!metricsOut.empty()) {
      const ResourceProbe probe = ResourceProbe::sample();
      telemetry::metrics().gauge("process.peak_rss_mb").set(probe.peakRssMb);
      telemetry::metrics().gauge("process.user_cpu_s").set(probe.userCpuSec);
      telemetry::metrics().gauge("process.sys_cpu_s").set(probe.sysCpuSec);
      const telemetry::MetricsSnapshot snap = telemetry::metrics().snapshot();
      std::ofstream out(metricsOut, std::ios::trunc);
      MOSAIC_CHECK(out.good(), "cannot open for writing: " << metricsOut);
      out << snap.toJson() << "\n";
      MOSAIC_CHECK(out.good(), "write failed: " << metricsOut);
      std::printf("== metrics (written to %s) ==\n%s", metricsOut.c_str(),
                  snap.summaryTable().c_str());
    }
  }
};

Layout loadTarget(const std::string& inputGlp, int caseIndex) {
  if (!inputGlp.empty()) return readGlpFile(inputGlp);
  MOSAIC_CHECK(caseIndex >= 1 && caseIndex <= kTestcaseCount,
               "pass --input <file.glp> or --case 1..10");
  return buildTestcase(caseIndex);
}

LithoSimulator makeSim(int pixel) {
  OpticsConfig optics;
  optics.pixelNm = pixel;
  return LithoSimulator(optics);
}

void dumpImages(const LithoSimulator& sim, const RealGrid& mask,
                const BitGrid& target, const std::string& dir,
                const std::string& stem) {
  const int n = sim.gridSize();
  auto dump = [&](const std::string& tag, const RealGrid& img) {
    const std::string path = dir + "/" + stem + "_" + tag + ".pgm";
    writePgm(path, {img.data(), img.size()}, n, n);
    std::printf("wrote %s\n", path.c_str());
  };
  dump("target", toReal(target));
  dump("mask", mask);
  dump("nominal", toReal(sim.print(mask, nominalCorner())));
  const PvBandResult pvb = computePvBand(sim, mask, evaluationCorners());
  dump("pvband", toReal(pvb.band));
}

void printEvaluation(const CaseEvaluation& ev, const MrcResult& mrc) {
  TextTable t;
  t.setHeader({"metric", "value"});
  t.addRow({"EPE violations", TextTable::integer(ev.epeViolations)});
  t.addRow({"mean |EPE| (nm)", TextTable::num(ev.meanAbsEpeNm, 2)});
  t.addRow({"max |EPE| (nm)", TextTable::num(ev.maxAbsEpeNm, 1)});
  t.addRow({"PV band (nm^2)", TextTable::num(ev.pvbandAreaNm2, 0)});
  t.addRow({"shape violations", TextTable::integer(ev.shapeViolations)});
  t.addRow({"contest score", TextTable::num(ev.score, 0)});
  t.addRow({"mask components", TextTable::integer(mrc.components)});
  t.addRow({"mask rectangles (shots)", TextTable::integer(mrc.rectangles)});
  t.addRow({"mask vertices", TextTable::integer(mrc.contourVertices)});
  t.addRow({"mask perimeter (nm)", TextTable::integer(mrc.perimeterNm)});
  t.addRow({"MRC width viol. (px)", TextTable::integer(mrc.widthViolationPx)});
  t.addRow({"MRC space viol. (px)", TextTable::integer(mrc.spaceViolationPx)});
  t.addRow({"MRC tiny features", TextTable::integer(mrc.tinyFeatures)});
  std::printf("%s", t.render().c_str());
}

int cmdRun(int argc, char** argv) {
  std::string input;
  int caseIndex = 0;
  std::string method = "fast";
  int pixel = 4;
  int iters = 0;
  std::string outMask;
  std::string images;
  std::string logLevel = "info";
  std::string failpoints;
  std::string checkpoint;
  int checkpointEvery = 5;
  std::string resume;
  double deadline = 0.0;
  int maxRecoveries = 3;
  int threads = 0;
  std::string backend = "auto";
  TelemetryFlags tele;

  double maskLow = 0.0;
  CliParser cli("mosaic_cli run", "run OPC on a target layout");
  cli.addString("input", &input, "target layout (GLP)");
  cli.addInt("case", &caseIndex, "built-in testcase index (1..10)");
  cli.addString("method", &method,
                "fast | exact | baseline | levelset | edge | rule | none");
  cli.addDouble("mask-low", &maskLow,
                "background transmission (0 = binary, -0.245 = 6% PSM)");
  cli.addInt("pixel", &pixel, "pixel size in nm");
  cli.addInt("iters", &iters, "optimizer iterations (0 = method default)");
  cli.addString("out-mask", &outMask, "write optimized mask as GLP");
  cli.addString("images", &images, "directory for PGM dumps");
  cli.addString("log", &logLevel, "log level");
  cli.addString("failpoints", &failpoints,
                "arm fail points, e.g. objective.gradient:nan@iter=7");
  cli.addString("checkpoint", &checkpoint,
                "write optimizer checkpoints to this file");
  cli.addInt("checkpoint-every", &checkpointEvery,
             "iterations between checkpoints");
  cli.addString("resume", &resume, "resume from an optimizer checkpoint");
  cli.addDouble("deadline", &deadline,
                "optimizer wall-clock budget in seconds (0 = unlimited)");
  cli.addInt("max-recoveries", &maxRecoveries,
             "non-finite rollbacks before aborting with best-so-far");
  cli.addInt("threads", &threads, kThreadsHelp);
  cli.addString("backend", &backend, kBackendHelp);
  tele.addOptions(cli);
  if (!cli.parse(argc, argv)) return 0;
  setLogLevel(parseLogLevel(logLevel));
  applyThreads(threads);
  applyBackend(backend);
  if (!failpoints.empty()) failpoint::configure(failpoints);
  const std::unique_ptr<telemetry::RunLog> runLog = tele.begin();

  const Layout layout = loadTarget(input, caseIndex);
  LithoSimulator sim = makeSim(pixel);
  const BitGrid target = rasterize(layout, pixel);

  RealGrid mask;
  double runtime = 0.0;
  if (method == "none") {
    mask = noOpcMask(target);
  } else if (method == "rule") {
    mask = ruleOpcMask(target, pixel);
  } else if (method == "edge") {
    WallTimer t;
    EdgeOpcConfig cfg;
    if (iters > 0) cfg.maxIterations = iters;
    const EdgeOpcResult res = runEdgeOpc(sim, target, cfg);
    mask = toReal(res.mask);
    runtime = t.seconds();
  } else if (method == "levelset") {
    WallTimer t;
    LevelSetConfig cfg;
    if (iters > 0) cfg.maxIterations = iters;
    const LevelSetResult res = runLevelSetIlt(sim, target, cfg);
    mask = toReal(res.mask);
    runtime = t.seconds();
  } else {
    OpcMethod m;
    if (method == "fast") {
      m = OpcMethod::kMosaicFast;
    } else if (method == "exact") {
      m = OpcMethod::kMosaicExact;
    } else if (method == "baseline") {
      m = OpcMethod::kIltBaseline;
    } else {
      throw InvalidArgument("unknown method: " + method);
    }
    IltConfig cfg = defaultIltConfig(m, pixel);
    if (iters > 0) cfg.maxIterations = iters;
    cfg.maskLow = maskLow;
    cfg.deadlineSeconds = deadline;
    cfg.maxRecoveries = maxRecoveries;
    CancelToken interruptToken;
    installTerminationHandler(&interruptToken);
    OptimizeOptions opt;
    opt.checkpointPath = checkpoint;
    opt.checkpointEvery = checkpoint.empty() ? 0 : checkpointEvery;
    opt.resumePath = resume;
    opt.runLog = runLog.get();
    opt.runLogScope = layout.name;
    opt.cancel = &interruptToken;
    const OpcResult res = runOpc(sim, target, m, &cfg, {}, {}, opt);
    installTerminationHandler(nullptr);
    mask = res.maskTwoLevel;
    runtime = res.runtimeSec;
    std::printf("stop reason: %s (%d iterations",
                stopReasonName(res.stopReason).c_str(), res.iterations);
    if (res.nonFiniteEvents > 0) {
      std::printf(", %d non-finite events, %d recoveries",
                  res.nonFiniteEvents, res.recoveries);
    }
    std::printf(")\n");
    if (res.stopReason == StopReason::kCanceled) {
      std::printf("interrupted by %s after %d iterations\n",
                  terminationSignalName(), res.iterations);
      if (!checkpoint.empty()) {
        std::printf("resume with: mosaic_cli run ... --resume %s\n",
                    checkpoint.c_str());
      } else {
        std::printf("(no --checkpoint was set; progress is lost)\n");
      }
      return kExitInterrupted;
    }
  }

  const CaseEvaluation ev = evaluateMask(sim, mask, target, runtime);
  const MrcResult mrc = checkMask(thresholdGrid(mask, 0.5), pixel);
  std::printf("== %s via %s ==\n", layout.name.c_str(), method.c_str());
  printEvaluation(ev, mrc);

  if (!outMask.empty()) {
    const Layout maskLayout = rasterToLayout(thresholdGrid(mask, 0.5), pixel,
                                             layout.name + "_mask");
    writeGlpFile(outMask, maskLayout);
    std::printf("wrote mask (%zu rects) to %s\n", maskLayout.rects.size(),
                outMask.c_str());
  }
  if (!images.empty()) dumpImages(sim, mask, target, images, layout.name);
  tele.finish(runLog.get());
  return 0;
}

// Exit codes of the batch runner: one diverging clip must never take the
// whole batch down, so partial failure is distinguishable from total.
constexpr int kBatchAllOk = 0;
constexpr int kBatchTotalFailure = 1;
constexpr int kBatchPartialFailure = 2;

/// Parse "1,4,7" into case indices; empty selects the full suite.
std::vector<int> parseCaseList(const std::string& text) {
  std::vector<int> cases;
  if (text.empty()) {
    for (int i = 1; i <= kTestcaseCount; ++i) cases.push_back(i);
    return cases;
  }
  std::size_t begin = 0;
  while (begin <= text.size()) {
    auto end = text.find(',', begin);
    if (end == std::string::npos) end = text.size();
    const std::string token = text.substr(begin, end - begin);
    MOSAIC_CHECK(!token.empty(), "empty entry in --cases list");
    int index = 0;
    try {
      index = std::stoi(token);
    } catch (const std::exception&) {
      throw InvalidArgument("bad case index in --cases: " + token);
    }
    MOSAIC_CHECK(index >= 1 && index <= kTestcaseCount,
                 "case index out of range 1.." << kTestcaseCount << ": "
                                               << token);
    cases.push_back(index);
    begin = end + 1;
  }
  return cases;
}

int cmdBatch(int argc, char** argv) {
  std::string method = "fast";
  int pixel = 4;
  int iters = 0;
  int retries = 1;
  std::string cases;
  std::string outDir;
  std::string logLevel = "warn";
  std::string failpoints;
  double deadline = 0.0;
  int backoffMs = 50;
  int threads = 0;
  std::string backend = "auto";
  std::string checkpointDir;
  int checkpointEvery = 5;
  bool resume = false;
  TelemetryFlags tele;

  CliParser cli("mosaic_cli batch",
                "fault-tolerant OPC over the benchmark suite");
  cli.addString("method", &method, "fast | exact | baseline");
  cli.addInt("pixel", &pixel, "pixel size in nm");
  cli.addInt("iters", &iters, "optimizer iterations (0 = method default)");
  cli.addInt("retries", &retries, "retries per clip on failure");
  cli.addString("cases", &cases, "comma-separated clip indices (default all)");
  cli.addString("out-dir", &outDir, "write optimized masks here as GLP");
  cli.addString("log", &logLevel, "log level");
  cli.addString("failpoints", &failpoints,
                "arm fail points, e.g. batch.clip:throw@iter=3");
  cli.addDouble("deadline", &deadline,
                "per-clip optimizer wall-clock budget in seconds");
  cli.addInt("backoff-ms", &backoffMs, "retry backoff in milliseconds");
  cli.addInt("threads", &threads, kThreadsHelp);
  cli.addString("backend", &backend, kBackendHelp);
  cli.addString("checkpoint-dir", &checkpointDir,
                "directory for per-clip optimizer checkpoints (B<i>.ckpt)");
  cli.addInt("checkpoint-every", &checkpointEvery,
             "iterations between per-clip checkpoints");
  cli.addFlag("resume", &resume,
              "resume clips from existing checkpoints in --checkpoint-dir");
  tele.addOptions(cli);
  if (!cli.parse(argc, argv)) return 0;
  setLogLevel(parseLogLevel(logLevel));
  applyThreads(threads);
  applyBackend(backend);
  if (!failpoints.empty()) failpoint::configure(failpoints);
  MOSAIC_CHECK(retries >= 0, "--retries must be >= 0");
  MOSAIC_CHECK(backoffMs >= 0, "--backoff-ms must be >= 0");
  const std::unique_ptr<telemetry::RunLog> runLog = tele.begin();

  OpcMethod m;
  if (method == "fast") {
    m = OpcMethod::kMosaicFast;
  } else if (method == "exact") {
    m = OpcMethod::kMosaicExact;
  } else if (method == "baseline") {
    m = OpcMethod::kIltBaseline;
  } else {
    throw InvalidArgument("unknown batch method: " + method);
  }
  const std::vector<int> caseList = parseCaseList(cases);
  if (!checkpointDir.empty()) {
    std::filesystem::create_directories(checkpointDir);
  }

  // One simulator for the whole batch: clips share the kernel sets. The
  // clips run serially here, but sharing is safe even under concurrency —
  // LithoSimulator's const interface is thread-safe by contract (see
  // litho/simulator.hpp), which is what the tile scheduler relies on.
  LithoSimulator sim = makeSim(pixel);

  CancelToken interruptToken;
  installTerminationHandler(&interruptToken);

  struct ClipOutcome {
    std::string name;
    bool ok = false;
    int attempts = 0;
    CaseEvaluation ev;
    int nonFiniteEvents = 0;
    int recoveries = 0;
    double seconds = 0.0;
    std::string error;
  };
  std::vector<ClipOutcome> outcomes;
  bool interrupted = false;
  std::string interruptedClip;

  for (const int index : caseList) {
    if (interruptToken.stopRequested()) {
      interrupted = true;
      break;  // not-yet-started clips are simply left for the resumed run
    }
    ClipOutcome outcome;
    outcome.name = "B" + std::to_string(index);
    const std::string clipCkpt =
        checkpointDir.empty() ? std::string()
                              : checkpointDir + "/" + outcome.name + ".ckpt";
    bool allowResume = resume;
    for (int attempt = 1; attempt <= retries + 1; ++attempt) {
      outcome.attempts = attempt;
      WallTimer clipTimer;
      try {
        // Per-clip isolation: any fault below lands in the catch and the
        // batch moves on. The fail-point site lets tests force a clip to
        // fail deterministically.
        MOSAIC_FAILPOINT("batch.clip");
        const Layout layout = buildTestcase(index);
        const BitGrid target = rasterize(layout, pixel);
        IltConfig cfg = defaultIltConfig(m, pixel);
        if (iters > 0) cfg.maxIterations = iters;
        cfg.deadlineSeconds = deadline;
        OptimizeOptions opt;
        opt.runLog = runLog.get();
        opt.runLogScope = outcome.name;
        opt.cancel = &interruptToken;
        if (!clipCkpt.empty()) {
          opt.checkpointPath = clipCkpt;
          opt.checkpointEvery = checkpointEvery;
          if (allowResume && std::ifstream(clipCkpt).good()) {
            opt.resumePath = clipCkpt;
          }
        }
        const OpcResult res = runOpc(sim, target, m, &cfg, {}, {}, opt);
        if (res.stopReason == StopReason::kCanceled) {
          // Signal mid-clip: the optimizer already checkpointed (when
          // armed); stop the batch here and leave this clip resumable.
          interrupted = true;
          interruptedClip = outcome.name;
          outcome.seconds = clipTimer.seconds();
          outcome.error = "interrupted";
          break;
        }
        outcome.ev =
            evaluateMask(sim, res.maskTwoLevel, target, res.runtimeSec);
        outcome.nonFiniteEvents = res.nonFiniteEvents;
        outcome.recoveries = res.recoveries;
        outcome.seconds = clipTimer.seconds();
        outcome.ok = true;
        outcome.error.clear();
        if (!outDir.empty()) {
          const Layout maskLayout =
              rasterToLayout(res.maskBinary, pixel, layout.name + "_mask");
          writeGlpFile(outDir + "/" + layout.name + "_mask.glp", maskLayout);
        }
        break;
      } catch (const CheckpointError& e) {
        // Unusable per-clip checkpoint: restart this clip fresh without
        // burning a retry (the retry budget is for optimization faults).
        outcome.error = e.what();
        allowResume = false;
        LOG_WARN("clip B" << index << " checkpoint unusable, restarting "
                          << "fresh: " << e.what());
        --attempt;
      } catch (const std::exception& e) {
        outcome.seconds = clipTimer.seconds();
        outcome.error = e.what();
        LOG_WARN("clip B" << index << " attempt " << attempt
                          << " failed: " << e.what());
        if (attempt <= retries) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(backoffMs * attempt));
        }
      }
    }
    if (runLog) {
      telemetry::JsonObject obj;
      obj.set("type", "clip");
      obj.set("clip", outcome.name);
      obj.set("status", outcome.ok ? "ok" : "failed");
      obj.set("attempts", outcome.attempts);
      obj.set("recoveries", outcome.recoveries);
      obj.set("non_finite", outcome.nonFiniteEvents);
      obj.set("wall_ms", outcome.seconds * 1000.0);
      if (outcome.ok) {
        obj.set("epe_violations", outcome.ev.epeViolations);
        obj.set("pvband_nm2", outcome.ev.pvbandAreaNm2);
        obj.set("score", outcome.ev.score);
      }
      if (!outcome.error.empty()) obj.set("error", outcome.error);
      runLog->write(obj);
    }
    outcomes.push_back(std::move(outcome));
  }

  TextTable t;
  t.setHeader({"clip", "status", "attempts", "EPE viol", "PV band", "score",
               "recov", "time (s)", "detail"});
  int succeeded = 0;
  for (const ClipOutcome& o : outcomes) {
    std::string detail = o.error;
    if (detail.size() > 48) detail = detail.substr(0, 45) + "...";
    if (o.ok) {
      ++succeeded;
      t.addRow({o.name, o.attempts > 1 ? "ok (retried)" : "ok",
                TextTable::integer(o.attempts),
                TextTable::integer(o.ev.epeViolations),
                TextTable::num(o.ev.pvbandAreaNm2, 0),
                TextTable::num(o.ev.score, 0),
                TextTable::integer(o.recoveries), TextTable::num(o.seconds, 1),
                detail});
    } else {
      t.addRow({o.name, "FAILED", TextTable::integer(o.attempts), "-", "-",
                "-", "-", TextTable::num(o.seconds, 1), detail});
    }
  }
  // Wall-time spread + total retries across the batch: the quick answer to
  // "was one clip pathologically slow" without opening the run log.
  double minSec = 0.0;
  double maxSec = 0.0;
  double sumSec = 0.0;
  int totalRetries = 0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const ClipOutcome& o = outcomes[i];
    minSec = i == 0 ? o.seconds : std::min(minSec, o.seconds);
    maxSec = std::max(maxSec, o.seconds);
    sumSec += o.seconds;
    totalRetries += std::max(0, o.attempts - 1);
  }
  const double meanSec =
      outcomes.empty() ? 0.0 : sumSec / static_cast<double>(outcomes.size());
  t.addRow({"(all)", std::to_string(succeeded) + "/" +
                         std::to_string(outcomes.size()) + " ok",
            TextTable::integer(totalRetries) + " retries", "-", "-", "-", "-",
            TextTable::num(minSec, 1) + "/" + TextTable::num(meanSec, 1) +
                "/" + TextTable::num(maxSec, 1),
            "min/mean/max time"});
  std::printf("%s", t.render().c_str());
  std::printf("%d/%zu clips succeeded\n", succeeded, outcomes.size());
  std::printf("%s\n", ResourceProbe::sample().oneLine().c_str());

  if (runLog) {
    telemetry::JsonObject obj;
    obj.set("type", "batch_summary");
    obj.set("clips", static_cast<long long>(outcomes.size()));
    obj.set("succeeded", succeeded);
    obj.set("total_retries", totalRetries);
    obj.set("min_wall_s", minSec);
    obj.set("mean_wall_s", meanSec);
    obj.set("max_wall_s", maxSec);
    runLog->write(obj);
  }
  tele.finish(runLog.get());
  installTerminationHandler(nullptr);

  if (interrupted) {
    std::printf("batch interrupted by %s", terminationSignalName());
    if (!interruptedClip.empty()) {
      std::printf(" during clip %s", interruptedClip.c_str());
    }
    std::printf("\n");
    if (!checkpointDir.empty()) {
      std::printf("resume with: mosaic_cli batch ... --checkpoint-dir %s "
                  "--resume\n",
                  checkpointDir.c_str());
    } else {
      std::printf("(no --checkpoint-dir was set; in-flight progress is "
                  "lost)\n");
    }
    return kExitInterrupted;
  }

  if (succeeded == static_cast<int>(outcomes.size())) return kBatchAllOk;
  return succeeded == 0 ? kBatchTotalFailure : kBatchPartialFailure;
}

// Exit codes of the chip runner mirror the batch runner: a degraded chip
// (some tiles fell back to the uncorrected pattern) is distinguishable
// from a clean one and from total failure.
int cmdChip(int argc, char** argv) {
  std::string input;
  int chipSize = 0;
  int caseIndex = 0;
  int replicate = 2;
  std::string method = "fast";
  int pixel = 4;
  int iters = 0;
  int tileSize = 1024;
  int halo = -1;
  int threads = 0;
  bool pinWorkers = false;
  bool noCacheOrder = false;
  std::string backend = "auto";
  int retries = 1;
  int backoffMs = 50;
  double deadline = 0.0;
  std::string checkpointDir;
  int checkpointEvery = 5;
  bool resume = false;
  std::string kernelCache;
  std::string patternCache;
  int cacheMaxMb = 512;
  int warmIters = 0;
  std::string ecoBase;
  std::string outMask;
  std::string logLevel = "info";
  std::string failpoints;
  TelemetryFlags tele;

  CliParser cli("mosaic_cli chip",
                "full-chip OPC: tile, optimize in parallel, stitch");
  cli.addString("input", &input, "chip layout (GLP)");
  cli.addInt("chip-size", &chipSize,
             "chip window in nm for --input (0 = tile-size * replicate)");
  cli.addInt("case", &caseIndex,
             "built-in testcase replicated into a synthetic chip (1..10)");
  cli.addInt("replicate", &replicate,
             "replication factor for --case (K x K clips)");
  cli.addString("method", &method, "fast | exact | baseline");
  cli.addInt("pixel", &pixel, "pixel size in nm");
  cli.addInt("iters", &iters, "optimizer iterations per tile (0 = default)");
  cli.addInt("tile-size", &tileSize, "core tile edge in nm");
  cli.addInt("halo", &halo,
             "halo margin in nm (-1 = 2x optical interaction radius)");
  cli.addInt("threads", &threads, kThreadsHelp);
  cli.addFlag("pin-workers", &pinWorkers,
              "pin executor workers round-robin onto CPUs");
  cli.addFlag("no-cache-order", &noCacheOrder,
              "disable cache-aware tile ordering (representatives first)");
  cli.addString("backend", &backend, kBackendHelp);
  cli.addInt("retries", &retries, "retries per tile on failure");
  cli.addInt("backoff-ms", &backoffMs, "retry backoff in milliseconds");
  cli.addDouble("deadline", &deadline,
                "per-tile optimizer wall-clock budget in seconds");
  cli.addString("checkpoint-dir", &checkpointDir,
                "directory for per-tile optimizer checkpoints");
  cli.addInt("checkpoint-every", &checkpointEvery,
             "iterations between per-tile checkpoints");
  cli.addFlag("resume", &resume,
              "resume tiles from existing checkpoints in --checkpoint-dir");
  cli.addString("kernel-cache", &kernelCache,
                "directory for on-disk kernel caching");
  cli.addString("pattern-cache", &patternCache,
                "pattern-library cache directory: reuse solved tile masks "
                "across runs (docs/caching.md)");
  cli.addInt("cache-max-mb", &cacheMaxMb,
             "pattern-cache size cap in MB (LRU-evicted; 0 = unlimited)");
  cli.addInt("warm-iters", &warmIters,
             "iteration budget for cache warm starts (0 = cold budget / 4)");
  cli.addString("eco-base", &ecoBase,
                "incremental re-OPC: pattern-cache directory of a previous "
                "run; only changed tiles re-optimize");
  cli.addString("out-mask", &outMask, "write the stitched mask as GLP");
  cli.addString("log", &logLevel, "log level");
  cli.addString("failpoints", &failpoints,
                "arm fail points, e.g. tile.optimize:throw@iter=2");
  tele.addOptions(cli);
  if (!cli.parse(argc, argv)) return 0;
  setLogLevel(parseLogLevel(logLevel));
  setWorkerPinning(pinWorkers);
  applyThreads(threads);
  applyBackend(backend);
  if (!failpoints.empty()) failpoint::configure(failpoints);
  const std::unique_ptr<telemetry::RunLog> runLog = tele.begin();

  ChipConfig cfg;
  cfg.tiling.tileSizeNm = tileSize;
  cfg.tiling.haloNm = halo;
  cfg.tiling.pixelNm = pixel;
  cfg.optics.pixelNm = pixel;
  if (method == "fast") {
    cfg.method = OpcMethod::kMosaicFast;
  } else if (method == "exact") {
    cfg.method = OpcMethod::kMosaicExact;
  } else if (method == "baseline") {
    cfg.method = OpcMethod::kIltBaseline;
  } else {
    throw InvalidArgument("unknown chip method: " + method);
  }
  cfg.iterations = iters;
  cfg.retries = retries;
  cfg.backoffMs = backoffMs;
  cfg.tileDeadlineSeconds = deadline;
  cfg.checkpointDir = checkpointDir;
  cfg.checkpointEvery = checkpointEvery;
  cfg.resume = resume;
  cfg.kernelCacheDir = kernelCache;
  cfg.patternCacheDir = patternCache;
  cfg.patternCacheMaxBytes = static_cast<long long>(cacheMaxMb) << 20;
  cfg.warmIterations = warmIters;
  cfg.cacheAwareOrder = !noCacheOrder;
  cfg.ecoBaseDir = ecoBase;
  cfg.runLog = runLog.get();
  CancelToken interruptToken;
  installTerminationHandler(&interruptToken);
  cfg.cancel = &interruptToken;

  Layout chip;
  if (!input.empty()) {
    GlpReadOptions glp;
    glp.clipSizeNm = chipSize > 0 ? chipSize : tileSize * replicate;
    // Chip coordinates are absolute: recentering would re-normalize a
    // revised layout and silently cancel (or smear across every tile) the
    // very edits the ECO flow diffs for.
    glp.recenter = false;
    chip = readGlpFile(input, glp);
    for (const RectNm& r : chip.rects) {
      MOSAIC_CHECK(r.x0 >= 0 && r.y0 >= 0 && r.x1 <= chip.sizeNm &&
                       r.y1 <= chip.sizeNm,
                   "chip input rect [" << r.x0 << "," << r.y0 << " " << r.x1
                                       << "," << r.y1
                                       << "] lies outside the chip [0,"
                                       << chip.sizeNm
                                       << ")^2; pass --chip-size to enlarge");
    }
  } else {
    MOSAIC_CHECK(caseIndex >= 1 && caseIndex <= kTestcaseCount,
                 "pass --input <chip.glp> or --case 1..10");
    MOSAIC_CHECK(replicate >= 1, "--replicate must be >= 1");
    chip = replicateLayout(buildTestcase(caseIndex), replicate, replicate);
  }

  const ChipResult res = optimizeChip(chip, cfg);
  const ChipPartition& part = res.partition;
  std::printf("== chip %s: %d x %d nm, %dx%d tiles of %d nm core + %d nm "
              "halo (%d px windows), %d threads ==\n",
              chip.name.c_str(), part.chipSizeNm, part.chipSizeNm,
              part.tileRows, part.tileCols, part.tileSizeNm, part.haloNm,
              part.windowGrid(), hardwareParallelism());

  TextTable t;
  t.setHeader({"tile", "status", "attempts", "iters", "recov", "time (s)",
               "detail"});
  for (const TileOutcome& o : res.outcomes) {
    std::string detail = o.error;
    if (detail.size() > 48) detail = detail.substr(0, 45) + "...";
    const std::string name =
        "r" + std::to_string(o.row) + "c" + std::to_string(o.col);
    std::string status;
    if (o.skippedEmpty) {
      status = "empty";
    } else if (o.fromCache) {
      status = "cached";
    } else if (o.ok) {
      status = o.attempts > 1 ? "ok (retried)"
               : o.warmStarted ? "ok (warm)"
                               : "ok";
    } else {
      status = "FALLBACK";
    }
    t.addRow({name, status, TextTable::integer(o.attempts),
              TextTable::integer(o.iterations),
              TextTable::integer(o.recoveries), TextTable::num(o.seconds, 1),
              detail});
  }
  std::printf("%s", t.render().c_str());
  std::printf("%d/%d tiles ok in %.1f s\n", res.succeeded, part.tileCount(),
              res.wallSeconds);
  std::printf("%s\n", ResourceProbe::sample().oneLine().c_str());

  const SeamReport& seam = res.stitched.report;
  std::printf("seam consistency: %lld/%lld overlap px disagree (%.4f%%), "
              "%lld core mismatches, %lld non-finite px\n",
              seam.disagreeingPixels, seam.overlapPixels,
              100.0 * seam.disagreementFraction, seam.coreMismatchPixels,
              seam.nonFinitePixels);

  if (res.cacheEnabled) {
    const PatternStoreStats& cs = res.cacheStats;
    std::printf("pattern cache: %llu exact, %llu translated, %llu near-miss, "
                "%llu miss (%.1f%% hit rate), %llu inserted, %llu evicted, "
                "%llu quarantined; %lld entries / %.1f MB on disk\n",
                static_cast<unsigned long long>(cs.exactHits),
                static_cast<unsigned long long>(cs.translatedHits),
                static_cast<unsigned long long>(cs.nearMissHits),
                static_cast<unsigned long long>(cs.misses),
                100.0 * cs.hitRate(),
                static_cast<unsigned long long>(cs.inserts),
                static_cast<unsigned long long>(cs.evictions),
                static_cast<unsigned long long>(cs.quarantined), cs.entries,
                static_cast<double>(cs.bytes) / (1 << 20));
  }
  if (res.eco.active) {
    std::printf("eco: %d/%d tiles changed vs %s%s\n", res.eco.tilesChanged,
                res.eco.tilesTotal, ecoBase.c_str(),
                res.eco.baseValid ? "" : " (no base manifest; all treated "
                                         "as changed)");
  }

  if (!outMask.empty()) {
    const Layout maskLayout =
        rasterToLayout(res.stitched.maskBinary, pixel, chip.name + "_mask");
    writeGlpFile(outMask, maskLayout);
    std::printf("wrote stitched mask (%zu rects) to %s\n",
                maskLayout.rects.size(), outMask.c_str());
  }

  tele.finish(runLog.get());
  installTerminationHandler(nullptr);

  if (res.interrupted) {
    std::printf("chip run interrupted by %s (%d/%d tiles finished)\n",
                terminationSignalName(), res.succeeded, part.tileCount());
    if (!checkpointDir.empty()) {
      std::printf("resume with: mosaic_cli chip ... --checkpoint-dir %s "
                  "--resume\n",
                  checkpointDir.c_str());
    } else {
      std::printf("(no --checkpoint-dir was set; in-flight tile progress is "
                  "lost)\n");
    }
    return kExitInterrupted;
  }

  if (seam.nonFinitePixels > 0 || res.succeeded == 0) return 1;
  return res.failed == 0 ? 0 : 2;
}

int cmdSimulate(int argc, char** argv) {
  std::string input;
  int caseIndex = 0;
  int pixel = 4;
  double focus = 0.0;
  double dose = 1.0;
  std::string images;
  std::string logLevel = "warn";
  std::string backend = "auto";

  CliParser cli("mosaic_cli simulate",
                "forward-simulate a mask at a process corner");
  cli.addString("input", &input, "mask layout (GLP)");
  cli.addInt("case", &caseIndex, "built-in testcase as the mask (1..10)");
  cli.addInt("pixel", &pixel, "pixel size in nm");
  cli.addDouble("focus", &focus, "defocus in nm");
  cli.addDouble("dose", &dose, "relative exposure dose");
  cli.addString("images", &images, "directory for PGM dumps");
  cli.addString("log", &logLevel, "log level");
  cli.addString("backend", &backend, kBackendHelp);
  if (!cli.parse(argc, argv)) return 0;
  setLogLevel(parseLogLevel(logLevel));
  applyBackend(backend);

  const Layout layout = loadTarget(input, caseIndex);
  LithoSimulator sim = makeSim(pixel);
  const BitGrid maskBits = rasterize(layout, pixel);
  const RealGrid mask = toReal(maskBits);

  const ProcessCorner corner{focus, dose};
  const RealGrid aerial = sim.aerial(mask, corner);
  const BitGrid printed = sim.printBinary(aerial);

  double peak = 0.0;
  for (double v : aerial) peak = std::max(peak, v);
  std::printf("mask %s at focus %.0f nm, dose %.2f:\n", layout.name.c_str(),
              focus, dose);
  std::printf("  peak intensity   %.4f (threshold %.3f)\n", peak,
              sim.resist().threshold);
  std::printf("  printed pixels   %lld (mask pixels %lld)\n",
              countSet(printed), countSet(maskBits));
  std::printf("  printed features %d, holes %d\n", countComponents(printed),
              countHoles(printed));
  if (!images.empty()) {
    const int n = sim.gridSize();
    writePgm(images + "/" + layout.name + "_aerial.pgm",
             {aerial.data(), aerial.size()}, n, n, 0.0, std::max(1.0, peak));
    writePgm(images + "/" + layout.name + "_printed.pgm",
             {toReal(printed).data(), static_cast<std::size_t>(n) * n}, n, n);
    std::printf("wrote images to %s\n", images.c_str());
  }
  return 0;
}

int cmdEvaluate(int argc, char** argv) {
  std::string input;
  std::string targetGlp;
  int targetCase = 0;
  int pixel = 4;
  std::string logLevel = "warn";
  std::string backend = "auto";

  CliParser cli("mosaic_cli evaluate",
                "contest metrics + MRC for a mask against a target");
  cli.addString("input", &input, "mask layout (GLP)");
  cli.addString("target", &targetGlp, "target layout (GLP)");
  cli.addInt("target-case", &targetCase, "built-in target testcase (1..10)");
  cli.addInt("pixel", &pixel, "pixel size in nm");
  cli.addString("log", &logLevel, "log level");
  cli.addString("backend", &backend, kBackendHelp);
  if (!cli.parse(argc, argv)) return 0;
  setLogLevel(parseLogLevel(logLevel));
  applyBackend(backend);

  MOSAIC_CHECK(!input.empty(), "--input <mask.glp> is required");
  const Layout maskLayout = readGlpFile(input);
  const Layout targetLayout = loadTarget(targetGlp, targetCase);
  LithoSimulator sim = makeSim(pixel);
  const BitGrid mask = rasterize(maskLayout, pixel);
  const BitGrid target = rasterize(targetLayout, pixel);

  const CaseEvaluation ev = evaluateMask(sim, toReal(mask), target, 0.0);
  const MrcResult mrc = checkMask(mask, pixel);
  std::printf("== mask %s vs target %s ==\n", maskLayout.name.c_str(),
              targetLayout.name.c_str());
  printEvaluation(ev, mrc);
  return 0;
}

/// Read the port a mosaic_serve daemon wrote to its work-dir port file.
int readPortFile(const std::string& path) {
  std::ifstream in(path);
  MOSAIC_CHECK(in.good(), "cannot read port file: " << path);
  int port = 0;
  in >> port;
  MOSAIC_CHECK(port > 0 && port <= 65535,
               "bad port in port file " << path << ": " << port);
  return port;
}

/// One request/response round trip on an established channel.
telemetry::JsonValue roundTrip(LineChannel& channel,
                               const telemetry::JsonObject& request,
                               int timeoutMs) {
  channel.writeLine(request.str());
  std::string line;
  MOSAIC_CHECK(channel.readLine(&line, timeoutMs),
               "no response from mosaic_serve (timeout or closed)");
  return telemetry::JsonValue::parse(line);
}

int cmdSubmit(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string portFile;
  std::string caseName = "B1";
  std::string method = "fast";
  int pixel = 16;
  int iters = 0;
  double deadline = 0.0;
  int maxAttempts = 2;
  int checkpointEvery = 5;
  std::string jobFile;
  std::string watch;
  bool wait = false;
  int pollMs = 200;
  double timeoutSec = 0.0;
  std::string logLevel = "warn";

  CliParser cli("mosaic_cli submit",
                "submit OPC jobs to a mosaic_serve daemon and poll results");
  cli.addString("host", &host, "daemon address (dotted quad)");
  cli.addInt("port", &port, "daemon port (0 = read --port-file)");
  cli.addString("port-file", &portFile,
                "read the port from a mosaic_serve work-dir serve.port file");
  cli.addString("case", &caseName, "job target: B1..B10 or random:<seed>");
  cli.addString("method", &method, "fast | exact | baseline");
  cli.addInt("pixel", &pixel, "pixel size in nm");
  cli.addInt("iters", &iters, "optimizer iterations (0 = method default)");
  cli.addDouble("deadline", &deadline,
                "per-job wall-clock budget in seconds (0 = none)");
  cli.addInt("max-attempts", &maxAttempts, "attempts before the job fails");
  cli.addInt("checkpoint-every", &checkpointEvery,
             "iterations between the job's resume checkpoints");
  cli.addString("job-file", &jobFile,
                "submit every line of this JSONL job-spec file instead");
  cli.addString("watch", &watch,
                "poll an existing job id instead of submitting");
  cli.addFlag("wait", &wait, "poll until terminal and print the result");
  cli.addInt("poll-ms", &pollMs, "status poll interval while waiting");
  cli.addDouble("timeout", &timeoutSec,
                "give up waiting after this many seconds (0 = forever)");
  cli.addString("log", &logLevel, "log level");
  if (!cli.parse(argc, argv)) return 0;
  setLogLevel(parseLogLevel(logLevel));
  MOSAIC_CHECK(pollMs >= 1, "--poll-ms must be >= 1");
  if (port == 0) {
    MOSAIC_CHECK(!portFile.empty(), "pass --port or --port-file");
    port = readPortFile(portFile);
  }

  LineChannel channel(connectTcp(host, port));
  constexpr int kReplyTimeoutMs = 10000;

  // Collect the job ids to track: from --watch, from --job-file, or from
  // the flag-built single spec.
  std::vector<std::string> ids;
  if (!watch.empty()) {
    ids.push_back(watch);
  } else {
    std::vector<std::string> submitLines;
    if (!jobFile.empty()) {
      std::ifstream in(jobFile);
      MOSAIC_CHECK(in.good(), "cannot read job file: " << jobFile);
      std::string line;
      while (std::getline(in, line)) {
        if (!line.empty()) submitLines.push_back(line);
      }
      MOSAIC_CHECK(!submitLines.empty(), "job file is empty: " << jobFile);
    }
    std::vector<telemetry::JsonObject> requests;
    if (submitLines.empty()) {
      serve::JobSpec spec;
      spec.caseName = caseName;
      spec.method = method;
      spec.pixelNm = pixel;
      spec.iterations = iters;
      spec.deadlineSeconds = deadline;
      spec.maxAttempts = maxAttempts;
      spec.checkpointEvery = checkpointEvery;
      telemetry::JsonObject req;
      req.set("op", "submit");
      serve::specToJson(spec, &req);
      requests.push_back(std::move(req));
    } else {
      for (const std::string& line : submitLines) {
        const serve::JobSpec spec =
            serve::specFromJson(telemetry::JsonValue::parse(line));
        telemetry::JsonObject req;
        req.set("op", "submit");
        serve::specToJson(spec, &req);
        requests.push_back(std::move(req));
      }
    }
    for (const telemetry::JsonObject& req : requests) {
      const telemetry::JsonValue reply =
          roundTrip(channel, req, kReplyTimeoutMs);
      if (!reply.boolOr("ok", false)) {
        std::printf("{\"ok\":false,\"error\":\"%s\",\"message\":\"%s\"}\n",
                    reply.stringOr("error", "internal").c_str(),
                    reply.stringOr("message", "").c_str());
        return 1;
      }
      const std::string id = reply.stringOr("job", "");
      std::printf("{\"ok\":true,\"job\":\"%s\"}\n", id.c_str());
      ids.push_back(id);
    }
  }

  if (!wait) return 0;

  // Follow each job's push stream to its end, then fetch and print the
  // result. The watch op streams one JSON line per optimizer iteration
  // (printed as received — live progress instead of a status poll) and
  // closes the connection after the terminal "ev":"end" line, so each
  // watch gets its own connection; the result op reuses the main channel.
  WallTimer waitTimer;
  bool allDone = true;
  for (const std::string& id : ids) {
    {
      LineChannel watchChannel(connectTcp(host, port));
      telemetry::JsonObject req;
      req.set("op", "watch");
      req.set("job", id);
      const telemetry::JsonValue ack =
          roundTrip(watchChannel, req, kReplyTimeoutMs);
      MOSAIC_CHECK(ack.boolOr("ok", false),
                   "watch failed for " << id << ": "
                                       << ack.stringOr("message", ""));
      std::string pushed;
      for (;;) {
        if (!watchChannel.readLine(&pushed, pollMs)) {
          MOSAIC_CHECK(!watchChannel.eofSeen(),
                       "watch stream for " << id
                                           << " closed without an end event");
          MOSAIC_CHECK(timeoutSec <= 0.0 || waitTimer.seconds() < timeoutSec,
                       "timed out waiting for " << id);
          continue;
        }
        std::printf("%s\n", pushed.c_str());
        std::fflush(stdout);
        const telemetry::JsonValue event = telemetry::JsonValue::parse(pushed);
        if (event.stringOr("ev", "") == "end") break;
      }
    }
    telemetry::JsonObject req;
    req.set("op", "result");
    req.set("job", id);
    const telemetry::JsonValue result =
        roundTrip(channel, req, kReplyTimeoutMs);
    // Print the raw result line: it is already the documented protocol
    // shape, and scripts (the serve smoke test) parse it directly.
    telemetry::JsonObject echo;
    echo.set("ok", result.boolOr("ok", false));
    echo.set("job", id);
    echo.set("state", result.stringOr("state", "unknown"));
    if (const telemetry::JsonValue* hash = result.find("mask_hash")) {
      echo.set("mask_hash", hash->asString());
    }
    echo.set("iterations", result.intOr("iterations", 0));
    echo.set("wall_s", result.numberOr("wall_s", 0.0));
    if (const telemetry::JsonValue* err = result.find("error")) {
      echo.set("error", err->asString());
    }
    std::printf("%s\n", echo.str().c_str());
    if (!result.boolOr("ok", false)) allDone = false;
  }
  return allDone ? 0 : 1;
}

int cmdExportSuite(int argc, char** argv) {
  std::string dir = ".";
  CliParser cli("mosaic_cli export-suite",
                "write the built-in clips B1..B10 as GLP files");
  cli.addString("dir", &dir, "output directory");
  if (!cli.parse(argc, argv)) return 0;
  for (const Layout& layout : buildAllTestcases()) {
    const std::string path = dir + "/" + layout.name + ".glp";
    writeGlpFile(path, layout);
    std::printf("wrote %s (%zu rects)\n", path.c_str(), layout.rects.size());
  }
  return 0;
}

void printUsage() {
  std::puts(
      "mosaic_cli -- process-window aware inverse lithography (MOSAIC)\n"
      "\n"
      "usage: mosaic_cli <command> [options]\n"
      "\n"
      "commands:\n"
      "  run           OPC a target layout and write the optimized mask\n"
      "  batch         fault-tolerant OPC over the benchmark suite\n"
      "                (exit 0 = all clips ok, 2 = partial failure,\n"
      "                 1 = total failure)\n"
      "  chip          full-chip OPC: halo-aware tiling, parallel tile\n"
      "                optimization, seam-consistent stitching (exit codes\n"
      "                as batch)\n"
      "  simulate      forward-simulate a mask at a process corner\n"
      "  evaluate      contest metrics + MRC for a mask against a target\n"
      "  export-suite  write the built-in clips B1..B10 as GLP files\n"
      "  submit        submit OPC jobs to a mosaic_serve daemon and poll\n"
      "                for results (docs/serving.md)\n"
      "\n"
      "interrupts: run/batch/chip exit with code 3 on SIGINT/SIGTERM after\n"
      "checkpointing in-flight work (see docs/serving.md)\n"
      "\n"
      "run `mosaic_cli <command> --help` for the command's options");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    failpoint::configureFromEnv();
    if (argc < 2 || std::strcmp(argv[1], "--help") == 0 ||
        std::strcmp(argv[1], "-h") == 0) {
      printUsage();
      return argc < 2 ? 1 : 0;
    }
    const std::string command = argv[1];
    if (command == "run") return cmdRun(argc - 1, argv + 1);
    if (command == "batch") return cmdBatch(argc - 1, argv + 1);
    if (command == "chip") return cmdChip(argc - 1, argv + 1);
    if (command == "simulate") return cmdSimulate(argc - 1, argv + 1);
    if (command == "evaluate") return cmdEvaluate(argc - 1, argv + 1);
    if (command == "export-suite") return cmdExportSuite(argc - 1, argv + 1);
    if (command == "submit") return cmdSubmit(argc - 1, argv + 1);
    std::fprintf(stderr, "unknown command: %s\n\n", command.c_str());
    printUsage();
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mosaic_cli failed: %s\n", e.what());
    return 1;
  }
}
