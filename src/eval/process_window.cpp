#include "eval/process_window.hpp"

#include "eval/epe.hpp"
#include "eval/shape.hpp"
#include "geometry/edges.hpp"
#include "support/error.hpp"

namespace mosaic {

ProcessWindowResult measureProcessWindow(const LithoSimulator& sim,
                                         const RealGrid& mask,
                                         const BitGrid& target,
                                         const ProcessWindowConfig& config) {
  MOSAIC_CHECK(config.focusSteps >= 2 && config.doseSteps >= 2,
               "need at least two steps per axis");
  MOSAIC_CHECK(config.maxFocusNm > 0 && config.doseSpan > 0,
               "window extents must be positive");

  const int pixelNm = sim.optics().pixelNm;
  const auto samples =
      extractSamples(target, config.sampleSpacingNm / pixelNm);
  const ComplexGrid spectrum = sim.maskSpectrum(mask);

  ProcessWindowResult result;
  result.focusSteps = config.focusSteps;
  result.doseSteps = config.doseSteps;
  result.matrix.reserve(static_cast<std::size_t>(config.focusSteps) *
                        config.doseSteps);

  for (int fi = 0; fi < config.focusSteps; ++fi) {
    const double focus =
        config.maxFocusNm * fi / (config.focusSteps - 1);
    for (int di = 0; di < config.doseSteps; ++di) {
      const double dose = 1.0 - config.doseSpan +
                          2.0 * config.doseSpan * di /
                              (config.doseSteps - 1);
      const BitGrid printed = sim.printBinary(
          sim.aerialFromSpectrum(spectrum, ProcessCorner{focus, dose}));
      FocusExposurePoint point;
      point.focusNm = focus;
      point.dose = dose;
      point.epeViolations = measureEpe(printed, target, samples, pixelNm,
                                       config.epeToleranceNm)
                                .violations;
      point.shapeViolations = analyzeShape(printed, target).violations();
      point.inSpec = point.epeViolations == 0 && point.shapeViolations == 0;
      result.matrix.push_back(point);
    }
  }

  // DOF at nominal dose: largest in-spec focus with all smaller focuses
  // in spec too (contiguous window from 0).
  const int nominalDoseIdx = (config.doseSteps - 1) / 2;
  for (int fi = 0; fi < config.focusSteps; ++fi) {
    const auto& point = result.at(fi, nominalDoseIdx);
    if (!point.inSpec) break;
    result.dofNm = point.focusNm;
  }

  // Exposure latitude at nominal focus: contiguous in-spec dose span
  // around dose 1.0.
  int lo = nominalDoseIdx;
  int hi = nominalDoseIdx;
  if (result.at(0, nominalDoseIdx).inSpec) {
    while (lo > 0 && result.at(0, lo - 1).inSpec) --lo;
    while (hi + 1 < config.doseSteps && result.at(0, hi + 1).inSpec) ++hi;
    result.exposureLatitudePct =
        100.0 * (result.at(0, hi).dose - result.at(0, lo).dose);
  }

  int inSpecCount = 0;
  for (const auto& point : result.matrix) inSpecCount += point.inSpec;
  result.windowFraction =
      static_cast<double>(inSpecCount) /
      static_cast<double>(result.matrix.size());
  return result;
}

}  // namespace mosaic
