file(REMOVE_RECURSE
  "CMakeFiles/test_opc_methods.dir/test_opc_methods.cpp.o"
  "CMakeFiles/test_opc_methods.dir/test_opc_methods.cpp.o.d"
  "test_opc_methods"
  "test_opc_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opc_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
