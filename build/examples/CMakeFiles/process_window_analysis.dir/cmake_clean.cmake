file(REMOVE_RECURSE
  "CMakeFiles/process_window_analysis.dir/process_window_analysis.cpp.o"
  "CMakeFiles/process_window_analysis.dir/process_window_analysis.cpp.o.d"
  "process_window_analysis"
  "process_window_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/process_window_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
