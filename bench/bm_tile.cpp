/// \file bm_tile.cpp
/// Tiling-engine throughput: optimizes a replicated full chip through the
/// tile scheduler at 1/2/4 workers, reports tiles/sec and the parallel
/// speedup, and emits BENCH_tile.json for trend tracking. Kernel sets are
/// pre-cached on disk before timing so every run measures the scheduler,
/// not the one-off TCC eigendecomposition.

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "suite/testcases.hpp"
#include "support/cli.hpp"
#include "support/log.hpp"
#include "support/parallel.hpp"
#include "support/table.hpp"
#include "tile/scheduler.hpp"

int main(int argc, char** argv) {
  using namespace mosaic;
  int caseIdx = 1;
  int replicate = 2;
  int tileSize = 512;
  int halo = 128;
  int pixel = 16;
  int iterations = 5;
  std::string cacheDir = "bm_tile_kernels";
  std::string jsonPath = "BENCH_tile.json";
  std::string logLevel = "warn";

  CliParser cli("bm_tile", "tile scheduler throughput and parallel speedup");
  cli.addInt("case", &caseIdx, "testcase replicated into the chip");
  cli.addInt("replicate", &replicate, "replication factor per axis");
  cli.addInt("tile-size", &tileSize, "core tile edge in nm");
  cli.addInt("halo", &halo, "requested halo in nm (-1 = optics default)");
  cli.addInt("pixel", &pixel, "pixel size in nm");
  cli.addInt("iters", &iterations, "optimizer iterations per tile");
  cli.addString("kernel-cache", &cacheDir, "kernel cache directory");
  cli.addString("json", &jsonPath, "output JSON path");
  cli.addString("log", &logLevel, "log level");
  try {
    if (!cli.parse(argc, argv)) return 0;
    setLogLevel(parseLogLevel(logLevel));

    const Layout chip = replicateLayout(buildTestcase(caseIdx), replicate,
                                        replicate);
    ChipConfig cfg;
    cfg.tiling.tileSizeNm = tileSize;
    cfg.tiling.haloNm = halo;
    cfg.tiling.pixelNm = pixel;
    cfg.iterations = iterations;
    cfg.kernelCacheDir = cacheDir;

    // Untimed warm-up run: populates the on-disk kernel cache and touches
    // every code path once.
    setParallelism(1);
    const ChipResult warm = optimizeChip(chip, cfg);
    MOSAIC_CHECK(warm.allOk(), "warm-up chip run failed");
    const int tiles = warm.partition.tileCount();

    struct Run {
      int workers;
      double seconds;
      double tilesPerSec;
    };
    std::vector<Run> runs;
    TextTable table;
    table.setHeader({"workers", "time (s)", "tiles/s", "speedup"});
    for (const int workers : {1, 2, 4}) {
      setParallelism(workers);
      const ChipResult res = optimizeChip(chip, cfg);
      MOSAIC_CHECK(res.allOk(), "chip run failed at " << workers
                                                      << " workers");
      const double seconds = res.wallSeconds;
      runs.push_back({workers, seconds, tiles / seconds});
      table.addRow({std::to_string(workers), TextTable::num(seconds, 2),
                    TextTable::num(tiles / seconds, 2),
                    TextTable::num(runs.front().seconds / seconds, 2)});
    }
    setParallelism(0);

    std::printf("== bm_tile: %d tiles of %d nm window, %d iters ==\n", tiles,
                warm.partition.windowNm, iterations);
    std::printf("%s", table.render().c_str());
    const double speedup4 = runs.front().seconds / runs.back().seconds;
    std::printf("speedup at 4 workers: %.2fx (hardware threads: %d)\n",
                speedup4, hardwareParallelism());

    FILE* json = std::fopen(jsonPath.c_str(), "w");
    MOSAIC_CHECK(json != nullptr, "cannot write " << jsonPath);
    std::fprintf(json,
                 "{\n  \"bench\": \"bm_tile\",\n  \"chip_nm\": %d,\n"
                 "  \"tiles\": %d,\n  \"window_nm\": %d,\n"
                 "  \"iterations\": %d,\n  \"runs\": [\n",
                 chip.sizeNm, tiles, warm.partition.windowNm, iterations);
    for (std::size_t i = 0; i < runs.size(); ++i) {
      std::fprintf(json,
                   "    {\"workers\": %d, \"seconds\": %.4f, "
                   "\"tiles_per_sec\": %.3f}%s\n",
                   runs[i].workers, runs[i].seconds, runs[i].tilesPerSec,
                   i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"speedup_4\": %.3f\n}\n", speedup4);
    std::fclose(json);
    std::printf("wrote %s\n", jsonPath.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bm_tile: %s\n", e.what());
    return 1;
  }
  return 0;
}
