/// \file ablation_psm.cpp
/// Extension study: the generalized mask parameterization of the paper's
/// ref. [10] (Ma & Arce) -- run MOSAIC_fast with a binary mask, a 6 %
/// attenuated PSM (background amplitude -sqrt(0.06)) and a strong PSM
/// (background -1), comparing EPE / PV band / score. PSM backgrounds add
/// destructive interference at feature edges, sharpening the image slope.

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "eval/evaluator.hpp"
#include "geometry/raster.hpp"
#include "litho/simulator.hpp"
#include "opc/mosaic.hpp"
#include "suite/testcases.hpp"
#include "support/cli.hpp"
#include "support/log.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace mosaic;
  int pixel = 4;
  int iterations = 20;
  std::string cases = "2,4,9";
  std::string logLevel = "warn";

  CliParser cli("ablation_psm",
                "binary vs attenuated vs strong PSM mask technology");
  cli.addInt("pixel", &pixel, "pixel size in nm");
  cli.addInt("iters", &iterations, "optimizer iterations");
  cli.addString("cases", &cases, "comma-separated testcase indices");
  cli.addString("log", &logLevel, "log level");
  try {
    if (!cli.parse(argc, argv)) return 0;
    setLogLevel(parseLogLevel(logLevel));

    OpticsConfig optics;
    optics.pixelNm = pixel;
    LithoSimulator sim(optics);

    struct Tech {
      const char* name;
      double low;
    };
    const std::vector<Tech> techs = {
        {"binary", 0.0},
        {"att-PSM 6%", -0.2449489743},  // -sqrt(0.06)
        {"strong PSM", -1.0},
    };

    TextTable table;
    table.setHeader({"case", "mask tech", "#EPE", "PVB(nm^2)", "shape",
                     "score"});
    std::string rest = cases;
    while (!rest.empty()) {
      const auto comma = rest.find(',');
      const int caseIdx = std::stoi(rest.substr(0, comma));
      rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
      const Layout layout = buildTestcase(caseIdx);
      const BitGrid target = rasterize(layout, pixel);

      for (const auto& tech : techs) {
        IltConfig cfg = defaultIltConfig(OpcMethod::kMosaicFast, pixel);
        cfg.maxIterations = iterations;
        cfg.maskLow = tech.low;
        const OpcResult res =
            runOpc(sim, target, OpcMethod::kMosaicFast, &cfg);
        const CaseEvaluation ev =
            evaluateMask(sim, res.maskTwoLevel, target, res.runtimeSec);
        table.addRow({layout.name, tech.name,
                      TextTable::integer(ev.epeViolations),
                      TextTable::num(ev.pvbandAreaNm2, 0),
                      TextTable::integer(ev.shapeViolations),
                      TextTable::num(ev.score, 0)});
      }
    }
    std::printf("=== Extension: mask technology (generalized ILT, ref. "
                "[10]) ===\n%s\n",
                table.render().c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ablation_psm failed: %s\n", e.what());
    return 1;
  }
}
