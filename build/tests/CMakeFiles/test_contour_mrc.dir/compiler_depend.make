# Empty compiler generated dependencies file for test_contour_mrc.
# This may be replaced when dependencies are built.
