# Empty dependencies file for ablation_pvband.
# This may be replaced when dependencies are built.
