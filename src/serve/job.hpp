#pragma once
/// \file job.hpp
/// Job model of the mosaic_serve daemon (docs/serving.md): what a client
/// submits (JobSpec), the lifecycle states a job moves through, and the
/// read-only snapshot the status/result protocol ops return. The JSON
/// (de)serialization here is shared by the wire protocol and the
/// write-ahead job journal so the two can never drift apart.

#include <cstdint>
#include <string>

#include "math/grid.hpp"
#include "support/telemetry/json.hpp"
#include "support/telemetry/jsonin.hpp"

namespace mosaic {
namespace serve {

/// What a client submits: one OPC optimization of a benchmark clip.
/// `caseName` selects the target: "B1".."B10" (built-in suite) or
/// "random:<seed>" (seeded random clip, deterministic per seed).
struct JobSpec {
  std::string id;        ///< assigned by the service, not the client
  std::string caseName = "B1";
  std::string method = "fast";  ///< fast | exact | baseline
  int pixelNm = 16;
  int iterations = 0;           ///< optimizer iterations (0 = method default)
  double deadlineSeconds = 0.0; ///< wall-clock budget from job start (0 = off)
  int maxAttempts = 2;          ///< total tries before the job fails
  int checkpointEvery = 5;      ///< iterations between resume checkpoints
};

/// Lifecycle of a job. Queued and running are transient; the other four
/// are terminal and journaled.
enum class JobState {
  kQueued,
  kRunning,
  kDone,
  kFailed,    ///< all attempts exhausted (or unrecoverable error)
  kCanceled,  ///< client cancel op
  kExpired,   ///< per-job deadline elapsed; best-so-far was checkpointed
};

[[nodiscard]] const char* jobStateName(JobState state);

/// Point-in-time view of one job, safe to hand across threads.
struct JobSnapshot {
  JobSpec spec;
  JobState state = JobState::kQueued;
  int attempts = 0;
  int iterationsDone = 0;
  double objective = 0.0;
  double wallSeconds = 0.0;
  std::string maskHash;  ///< FNV-1a 64 of the final mask bytes (hex), done only
  std::string error;     ///< failure detail (failed/expired/canceled)
  bool recovered = false;  ///< re-enqueued by journal replay after a restart
  /// What the worker is doing right now ("queued", "cache_lookup",
  /// "optimize", "finalize", ...). Live while running; last value after.
  std::string phase = "queued";
  /// Trace id ("t-%016llx") assigned at admission; stamps this job's
  /// spans, run-log records and flight-recorder events (observability.md).
  std::string traceId;
};

/// Serialize the client-settable JobSpec fields into `out` (id excluded —
/// the caller decides whether/where to stamp it).
void specToJson(const JobSpec& spec, telemetry::JsonObject* out);

/// Parse a JobSpec from a protocol/journal record and validate it. Throws
/// InvalidArgument (-> protocol error "bad_request") on unknown cases,
/// methods, or out-of-range numeric fields.
[[nodiscard]] JobSpec specFromJson(const telemetry::JsonValue& obj);

/// Validate a spec (same rules as specFromJson). Throws InvalidArgument on
/// the first violation; used by JobService::submit for in-process callers
/// that build JobSpec structs directly.
void validateSpec(const JobSpec& spec);

/// FNV-1a 64-bit over the raw grid bytes, rendered as 16 hex digits.
/// Identical masks — the bit-identical recovery criterion — hash equal.
[[nodiscard]] std::string maskHashHex(const RealGrid& mask);

}  // namespace serve
}  // namespace mosaic
