
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/epe.cpp" "src/eval/CMakeFiles/mosaic_eval.dir/epe.cpp.o" "gcc" "src/eval/CMakeFiles/mosaic_eval.dir/epe.cpp.o.d"
  "/root/repo/src/eval/evaluator.cpp" "src/eval/CMakeFiles/mosaic_eval.dir/evaluator.cpp.o" "gcc" "src/eval/CMakeFiles/mosaic_eval.dir/evaluator.cpp.o.d"
  "/root/repo/src/eval/mrc.cpp" "src/eval/CMakeFiles/mosaic_eval.dir/mrc.cpp.o" "gcc" "src/eval/CMakeFiles/mosaic_eval.dir/mrc.cpp.o.d"
  "/root/repo/src/eval/process_window.cpp" "src/eval/CMakeFiles/mosaic_eval.dir/process_window.cpp.o" "gcc" "src/eval/CMakeFiles/mosaic_eval.dir/process_window.cpp.o.d"
  "/root/repo/src/eval/pvband.cpp" "src/eval/CMakeFiles/mosaic_eval.dir/pvband.cpp.o" "gcc" "src/eval/CMakeFiles/mosaic_eval.dir/pvband.cpp.o.d"
  "/root/repo/src/eval/score.cpp" "src/eval/CMakeFiles/mosaic_eval.dir/score.cpp.o" "gcc" "src/eval/CMakeFiles/mosaic_eval.dir/score.cpp.o.d"
  "/root/repo/src/eval/shape.cpp" "src/eval/CMakeFiles/mosaic_eval.dir/shape.cpp.o" "gcc" "src/eval/CMakeFiles/mosaic_eval.dir/shape.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/litho/CMakeFiles/mosaic_litho.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/mosaic_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/mosaic_math.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mosaic_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
