#include "math/backend.hpp"

#include <atomic>

#include "math/scratch.hpp"
#include "support/telemetry/trace.hpp"

namespace mosaic {
namespace exec {

namespace {

/// The pre-backend hot loops, frozen operation-for-operation. Every
/// arithmetic expression and its evaluation order below matches the code
/// that used to live in LithoSimulator::aerialFromSpectrum and
/// IltObjective::accumulateGradient, so cpu_scalar results are
/// bit-identical to the historical engine and serve as the equivalence
/// oracle for the other backends.
class ScalarBackend final : public Backend {
 public:
  [[nodiscard]] const char* name() const override { return "cpu_scalar"; }

  void accumulateCoherentIntensity(const Fft2d& fft,
                                   const ComplexGrid& spectrum,
                                   const SpectrumView* kernels,
                                   const double* weights, int count,
                                   double dose,
                                   RealGrid& intensity) const override {
    // multiplyInto overwrites every element, so the (unzeroed) pooled
    // grid is safe here.
    scratch::ComplexLease fieldLease(fft.rows(), fft.cols());
    ComplexGrid& field = *fieldLease;
    for (int k = 0; k < count; ++k) {
      const SpectrumView& spec = kernels[k];
      field.fill({0.0, 0.0});
      for (std::size_t i = 0; i < spec.count; ++i) {
        const auto flat = static_cast<std::size_t>(spec.flatIndex[i]);
        field.data()[flat] = spectrum.data()[flat] * spec.value[i];
      }
      fft.inverse(field);
      const double w = weights[k];
      for (std::size_t i = 0; i < intensity.size(); ++i) {
        intensity.data()[i] += w * std::norm(field.data()[i]);
      }
    }
    if (dose != 1.0) {
      for (auto& v : intensity) v *= dose;
    }
  }

  void accumulateGradientChains(const Fft2d& fft,
                                const ComplexGrid& maskSpectrum,
                                const SpectrumView* kernels,
                                const double* weights, int count,
                                const RealGrid& gField,
                                ComplexGrid& accum) const override {
    const int rows = fft.rows();
    const int cols = fft.cols();
    scratch::ComplexLease fieldLease(rows, cols);
    ComplexGrid& field = *fieldLease;
    for (int k = 0; k < count; ++k) {
      const SpectrumView& spec = kernels[k];
      // field A = ifft(Mhat .* spec)
      field.fill({0.0, 0.0});
      for (std::size_t i = 0; i < spec.count; ++i) {
        const auto flat = static_cast<std::size_t>(spec.flatIndex[i]);
        field.data()[flat] = maskSpectrum.data()[flat] * spec.value[i];
      }
      fft.inverse(field);
      // B = G .* conj(A); accumulate w * fft(B) .* spec_flipped.
      for (std::size_t i = 0; i < field.size(); ++i) {
        field.data()[i] = gField.data()[i] * std::conj(field.data()[i]);
      }
      fft.forward(field);
      const std::complex<double> scale(weights[k], 0.0);
      for (std::size_t i = 0; i < spec.count; ++i) {
        const int flat = spec.flatIndex[i];
        const int r = flat / cols;
        const int c = flat % cols;
        const auto flipped = static_cast<std::size_t>(
            ((rows - r) % rows) * cols + ((cols - c) % cols));
        accum.data()[flipped] += field.data()[flipped] * spec.value[i] * scale;
      }
    }
  }
};

std::atomic<const Backend*>& currentSlot() {
  static std::atomic<const Backend*> slot{&scalarBackend()};
  return slot;
}

}  // namespace

const Backend& scalarBackend() {
  static ScalarBackend backend;
  return backend;
}

const Backend* findBackend(std::string_view name) {
  if (name == "auto") return &simdBackend();
  if (name == "cpu_scalar" || name == "scalar") return &scalarBackend();
  if (name == "cpu_simd" || name == "simd") return &simdBackend();
  if (name == "cpu_simd_f32" || name == "f32") return &simdFloatBackend();
  return nullptr;
}

std::string backendNames() {
  return "auto, cpu_scalar, cpu_simd, cpu_simd_f32";
}

const Backend& currentBackend() {
  return *currentSlot().load(std::memory_order_acquire);
}

void setCurrentBackend(const Backend& backend) {
  currentSlot().store(&backend, std::memory_order_release);
}

}  // namespace exec
}  // namespace mosaic
