file(REMOVE_RECURSE
  "CMakeFiles/ablation_multires.dir/ablation_multires.cpp.o"
  "CMakeFiles/ablation_multires.dir/ablation_multires.cpp.o.d"
  "ablation_multires"
  "ablation_multires.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multires.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
