#pragma once
/// \file progress.hpp
/// Streaming job progress: the bus between optimizer iterations running on
/// worker threads and `watch` clients blocked on the protocol thread
/// (docs/serving.md, docs/observability.md).
///
/// Design constraints:
///   - A stalled watcher must never backpressure a worker: publish() only
///     appends to bounded buffers, dropping the oldest event when a
///     subscriber's queue is full (the subscriber learns how many it lost).
///   - Subscribing after a job started (the common case — submit returns,
///     then the client opens a watch) must not miss the whole run: each
///     job topic keeps a small replay ring of recent events that a new
///     subscriber receives first.
///   - Terminal states close the topic so watch loops end deterministically
///     instead of timing out.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mosaic {
namespace serve {

/// One per-iteration progress sample (or the terminal marker closing the
/// stream). Field names mirror the optimizer's run-log iteration records.
struct ProgressEvent {
  std::string job;
  long long seq = 0;      ///< per-job sequence (gaps = dropped events)
  int iteration = 0;
  double objective = 0.0; ///< combined objective F
  double fTarget = 0.0;
  double fPvb = 0.0;
  double gradRms = 0.0;
  double wallMs = 0.0;    ///< wall time since the job attempt started
  bool terminal = false;  ///< last event of the stream
  std::string state;      ///< terminal only: done/failed/canceled/expired
};

/// One watcher's bounded event queue. Handed out as a shared_ptr: the
/// server's connection thread pops while the bus pushes; either side may
/// go away first.
class ProgressSubscription {
 public:
  /// Wait up to timeoutMs for the next event. False on timeout or when the
  /// stream is closed and drained (check finished() to distinguish).
  bool next(ProgressEvent* out, int timeoutMs);

  /// True once the terminal event has been consumed (or the topic closed):
  /// no further events will ever arrive.
  [[nodiscard]] bool finished() const;

  /// Events lost to the bounded queue so far (slow-consumer drops).
  [[nodiscard]] std::uint64_t dropped() const;

 private:
  friend class ProgressBus;
  static constexpr std::size_t kQueueCapacity = 256;

  void push(const ProgressEvent& event);
  void close();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<ProgressEvent> queue_;
  std::uint64_t dropped_ = 0;
  bool closed_ = false;
};

/// Fan-out hub: workers publish per-iteration events keyed by job id;
/// protocol threads subscribe. Topics are created lazily on first publish
/// or subscribe and retired when closed with no subscribers.
class ProgressBus {
 public:
  /// Append to the job's replay ring and every live subscriber's queue.
  /// Never blocks beyond the internal mutexes (no I/O, no waits).
  void publish(const ProgressEvent& event);

  /// Publish a terminal event (state = terminal job state) and close the
  /// topic: subscribers drain what is queued, then next() returns false
  /// with finished() true.
  void publishTerminal(const std::string& jobId, const std::string& state,
                       int iteration, double objective, double wallMs);

  /// Subscribe to a job's events. The replay ring (most recent
  /// kReplayCapacity events, terminal included) is delivered first, so a
  /// watch opened after completion still sees the tail and terminates.
  std::shared_ptr<ProgressSubscription> subscribe(const std::string& jobId);

  /// Next per-job sequence number (publish helper for producers that
  /// build events themselves).
  long long nextSeq(const std::string& jobId);

 private:
  static constexpr std::size_t kReplayCapacity = 64;
  /// Closed topics retained for late subscribers before eviction.
  static constexpr std::size_t kClosedRetain = 256;

  struct Topic {
    std::deque<ProgressEvent> replay;  ///< most recent events, oldest first
    std::vector<std::weak_ptr<ProgressSubscription>> subscribers;
    long long nextSeq = 0;
    bool closed = false;
  };

  std::mutex mutex_;
  std::map<std::string, Topic> topics_;
  std::deque<std::string> closedOrder_;  ///< closed topics, oldest first
};

}  // namespace serve
}  // namespace mosaic
