# Empty dependencies file for fig5_examples.
# This may be replaced when dependencies are built.
