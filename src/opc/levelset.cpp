#include "opc/levelset.hpp"

#include <algorithm>
#include <limits>
#include <vector>
#include <cmath>

#include "geometry/bitmap_ops.hpp"
#include "math/stats.hpp"
#include "opc/objective.hpp"
#include "support/log.hpp"

namespace mosaic {

RealGrid signedDistance(const BitGrid& mask) {
  const Grid<int> inside = manhattanDistance(mask);           // 0 on mask
  const Grid<int> outside = manhattanDistance(bitNot(mask));  // 0 off mask
  RealGrid phi(mask.rows(), mask.cols());
  for (int r = 0; r < mask.rows(); ++r) {
    for (int c = 0; c < mask.cols(); ++c) {
      if (mask(r, c)) {
        // Inside: negative distance to the nearest background pixel,
        // offset by 0.5 so the interface sits between pixels.
        phi(r, c) = -(static_cast<double>(outside(r, c)) - 0.5);
      } else {
        phi(r, c) = static_cast<double>(inside(r, c)) - 0.5;
      }
    }
  }
  return phi;
}

namespace {

/// Smeared Heaviside of -phi: mask transmission in (0, 1) with a
/// transition band of ~interfaceWidth pixels.
RealGrid heaviside(const RealGrid& phi, double width) {
  RealGrid mask(phi.rows(), phi.cols());
  for (std::size_t i = 0; i < phi.size(); ++i) {
    mask.data()[i] = 1.0 / (1.0 + std::exp(phi.data()[i] / width));
  }
  return mask;
}

}  // namespace

LevelSetResult runLevelSetIlt(const LithoSimulator& sim,
                              const BitGrid& target,
                              const LevelSetConfig& config) {
  MOSAIC_CHECK(config.maxIterations >= 1, "need at least one iteration");
  MOSAIC_CHECK(config.timeStep > 0 && config.interfaceWidth > 0,
               "level-set parameters must be positive");

  // Fidelity objective: quadratic (or gamma) image difference, no
  // process-window term -- the formulation of ref. [8].
  IltConfig objectiveCfg;
  objectiveCfg.targetTerm = TargetTerm::kImageDiff;
  objectiveCfg.gamma = config.gamma;
  objectiveCfg.alpha = 1.0;
  objectiveCfg.beta = 0.0;
  objectiveCfg.inLoopKernels = config.inLoopKernels;
  const IltObjective objective(sim, target, objectiveCfg);

  const BitGrid initial =
      insertSraf(target, sim.optics().pixelNm, config.sraf);
  RealGrid phi = signedDistance(initial);

  LevelSetResult result;
  result.mask = initial;
  result.bestObjective = std::numeric_limits<double>::infinity();

  for (int iter = 1; iter <= config.maxIterations; ++iter) {
    const RealGrid mask = heaviside(phi, config.interfaceWidth);
    const auto eval = objective.evaluate(mask, true);
    result.objectiveHistory.push_back(eval.value);
    result.iterations = iter;
    if (eval.value < result.bestObjective) {
      result.bestObjective = eval.value;
      result.mask = thresholdGrid(mask, 0.5);
      result.phi = phi;
    }

    // Velocity: dF/dphi = dF/dM * dM/dphi, dM/dphi = -M(1-M)/width.
    RealGrid velocity(phi.rows(), phi.cols());
    double maxSpeed = 0.0;
    for (std::size_t i = 0; i < phi.size(); ++i) {
      const double m = mask.data()[i];
      velocity.data()[i] =
          -eval.gradMask.data()[i] * m * (1.0 - m) / config.interfaceWidth;
      maxSpeed = std::max(maxSpeed, std::fabs(velocity.data()[i]));
    }
    if (maxSpeed < 1e-14) {
      LOG_DEBUG("level-set ILT converged (zero velocity) at iter " << iter);
      break;
    }
    // CFL-normalized explicit Euler step (phi moves at most timeStep px).
    const double scale = config.timeStep / maxSpeed;
    for (std::size_t i = 0; i < phi.size(); ++i) {
      phi.data()[i] -= scale * velocity.data()[i];
    }
    // Periodic reinitialization keeps |grad phi| ~ 1 near the interface.
    if (config.reinitEvery > 0 && iter % config.reinitEvery == 0) {
      phi = signedDistance(thresholdGrid(heaviside(phi, config.interfaceWidth),
                                         0.5));
    }
    LOG_DEBUG("level-set iter " << iter << " F=" << eval.value
                                << " maxSpeed=" << maxSpeed);
  }
  if (result.phi.empty()) result.phi = phi;
  return result;
}

}  // namespace mosaic
