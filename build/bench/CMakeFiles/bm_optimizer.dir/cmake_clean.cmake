file(REMOVE_RECURSE
  "CMakeFiles/bm_optimizer.dir/bm_optimizer.cpp.o"
  "CMakeFiles/bm_optimizer.dir/bm_optimizer.cpp.o.d"
  "bm_optimizer"
  "bm_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
