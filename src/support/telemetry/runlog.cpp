#include "support/telemetry/runlog.hpp"

#include "support/error.hpp"

namespace mosaic {
namespace telemetry {

RunLog::RunLog(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "w");
  MOSAIC_CHECK(file_ != nullptr, "cannot open run log for writing: " << path);
}

RunLog::~RunLog() {
  if (file_ != nullptr) std::fclose(file_);
}

void RunLog::write(const JsonObject& record) {
  std::string line = record.str();
  line += '\n';
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t written =
      std::fwrite(line.data(), 1, line.size(), file_);
  MOSAIC_CHECK(written == line.size(),
               "short write on run log: " << path_);
  std::fflush(file_);
  ++records_;
}

long long RunLog::recordsWritten() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

}  // namespace telemetry
}  // namespace mosaic
