# Empty dependencies file for mosaic_cli.
# This may be replaced when dependencies are built.
