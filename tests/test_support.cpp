/// Unit tests for the support library: errors, logging, CLI, tables, RNG,
/// image writers, parallel utilities.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <thread>
#include <vector>

#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/image_io.hpp"
#include "support/log.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace mosaic {
namespace {

// ---------------------------------------------------------------- errors

TEST(Error, CheckThrowsInvalidArgumentWithContext) {
  try {
    MOSAIC_CHECK(1 == 2, "custom detail " << 42);
    FAIL() << "expected throw";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("custom detail 42"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Error, AssertThrowsInternalError) {
  EXPECT_THROW(MOSAIC_ASSERT(false, "boom"), InternalError);
}

TEST(Error, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(MOSAIC_CHECK(true, "fine"));
  EXPECT_NO_THROW(MOSAIC_ASSERT(true, "fine"));
}

TEST(Error, HierarchyRootsAtError) {
  EXPECT_THROW(
      { throw InvalidArgument("x"); }, Error);
  EXPECT_THROW(
      { throw InternalError("x"); }, Error);
}

// ----------------------------------------------------------------- log

TEST(Log, ParseLevels) {
  EXPECT_EQ(parseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(parseLogLevel("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parseLogLevel("Warn"), LogLevel::kWarn);
  EXPECT_EQ(parseLogLevel("warning"), LogLevel::kWarn);
  EXPECT_EQ(parseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(parseLogLevel("off"), LogLevel::kOff);
  EXPECT_THROW(parseLogLevel("loud"), InvalidArgument);
}

TEST(Log, SetAndGetLevel) {
  const LogLevel before = logLevel();
  setLogLevel(LogLevel::kError);
  EXPECT_EQ(logLevel(), LogLevel::kError);
  setLogLevel(before);
}

// ----------------------------------------------------------------- cli

TEST(Cli, ParsesAllKinds) {
  int i = 1;
  double d = 2.5;
  std::string s = "abc";
  bool f = false;
  CliParser cli("prog", "test");
  cli.addInt("count", &i, "a count");
  cli.addDouble("ratio", &d, "a ratio");
  cli.addString("name", &s, "a name");
  cli.addFlag("verbose", &f, "a flag");

  const char* argv[] = {"prog",   "--count", "7",      "--ratio=0.25",
                        "--name", "xyz",     "--verbose"};
  EXPECT_TRUE(cli.parse(7, argv));
  EXPECT_EQ(i, 7);
  EXPECT_DOUBLE_EQ(d, 0.25);
  EXPECT_EQ(s, "xyz");
  EXPECT_TRUE(f);
}

TEST(Cli, DefaultsSurviveWhenAbsent) {
  int i = 42;
  CliParser cli("prog", "test");
  cli.addInt("count", &i, "a count");
  const char* argv[] = {"prog"};
  EXPECT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(i, 42);
}

TEST(Cli, FlagExplicitFalse) {
  bool f = true;
  CliParser cli("prog", "test");
  cli.addFlag("verbose", &f, "a flag");
  const char* argv[] = {"prog", "--verbose=false"};
  EXPECT_TRUE(cli.parse(2, argv));
  EXPECT_FALSE(f);
}

TEST(Cli, Errors) {
  int i = 0;
  CliParser cli("prog", "test");
  cli.addInt("count", &i, "a count");
  {
    const char* argv[] = {"prog", "--unknown", "3"};
    EXPECT_THROW(cli.parse(3, argv), InvalidArgument);
  }
  {
    const char* argv[] = {"prog", "--count"};
    EXPECT_THROW(cli.parse(2, argv), InvalidArgument);
  }
  {
    const char* argv[] = {"prog", "--count", "notanint"};
    EXPECT_THROW(cli.parse(3, argv), InvalidArgument);
  }
  {
    const char* argv[] = {"prog", "count"};
    EXPECT_THROW(cli.parse(2, argv), InvalidArgument);
  }
}

TEST(Cli, MalformedInputPrintsUsageToStderr) {
  int i = 0;
  CliParser cli("prog", "a test program");
  cli.addInt("count", &i, "a count");
  {
    const char* argv[] = {"prog", "--unknown", "3"};
    testing::internal::CaptureStderr();
    EXPECT_THROW(cli.parse(3, argv), InvalidArgument);
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("unknown option"), std::string::npos) << err;
    EXPECT_NE(err.find("prog -- a test program"), std::string::npos) << err;
    EXPECT_NE(err.find("--count"), std::string::npos) << err;
  }
  {
    const char* argv[] = {"prog", "--count", "notanint"};
    testing::internal::CaptureStderr();
    EXPECT_THROW(cli.parse(3, argv), InvalidArgument);
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("prog -- a test program"), std::string::npos) << err;
  }
}

TEST(Cli, DuplicateOptionRejected) {
  int i = 0;
  CliParser cli("prog", "test");
  cli.addInt("count", &i, "a count");
  EXPECT_THROW(cli.addInt("count", &i, "again"), InvalidArgument);
}

TEST(Cli, HelpReturnsFalseAndPrintsUsage) {
  int i = 0;
  CliParser cli("prog", "does things");
  cli.addInt("count", &i, "a count");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
  const std::string usage = cli.usage();
  EXPECT_NE(usage.find("does things"), std::string::npos);
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("default: 0"), std::string::npos);
}

// ---------------------------------------------------------------- table

TEST(Table, RendersAligned) {
  TextTable t;
  t.setHeader({"name", "value"});
  t.addRow({"a", "1"});
  t.addRow({"longer", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Separator line present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, RowArityMismatchThrows) {
  TextTable t;
  t.setHeader({"a", "b"});
  EXPECT_THROW(t.addRow({"only one"}), InvalidArgument);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
  EXPECT_EQ(TextTable::integer(-5), "-5");
}

TEST(Table, RenderWithoutHeaderThrows) {
  TextTable t;
  EXPECT_THROW(t.render(), InvalidArgument);
}

// ----------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, BelowBounds) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 300; ++i) {
    const auto v = rng.below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

// --------------------------------------------------------------- timer

TEST(Timer, MonotoneNonNegative) {
  WallTimer t;
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  EXPECT_NEAR(t.milliseconds(), t.seconds() * 1e3, 1.0);
}

TEST(Timer, ResetRestarts) {
  WallTimer t;
  t.reset();
  EXPECT_LT(t.seconds(), 1.0);
}

// ------------------------------------------------------------- imageio

TEST(ImageIo, PgmRoundTripHeader) {
  const auto path =
      std::filesystem::temp_directory_path() / "mosaic_test_img.pgm";
  std::vector<double> values = {0.0, 0.5, 1.0, 0.25, 0.75, 1.5};
  writePgm(path.string(), values, 2, 3);
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  int w = 0;
  int h = 0;
  int maxval = 0;
  in >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P5");
  EXPECT_EQ(w, 3);
  EXPECT_EQ(h, 2);
  EXPECT_EQ(maxval, 255);
  in.get();  // single whitespace after header
  std::vector<unsigned char> pixels(6);
  in.read(reinterpret_cast<char*>(pixels.data()), 6);
  EXPECT_EQ(pixels[0], 0);
  EXPECT_EQ(pixels[2], 255);
  EXPECT_EQ(pixels[5], 255);  // clamped
  std::filesystem::remove(path);
}

TEST(ImageIo, PgmSizeMismatchThrows) {
  std::vector<double> values(5, 0.0);
  EXPECT_THROW(writePgm("/tmp/should_not_exist.pgm", values, 2, 3),
               InvalidArgument);
}

TEST(ImageIo, PpmWrites) {
  const auto path =
      std::filesystem::temp_directory_path() / "mosaic_test_img.ppm";
  std::vector<double> ch = {0.0, 1.0, 0.5, 0.25};
  writePpm(path.string(), ch, ch, ch, 2, 2);
  EXPECT_GT(std::filesystem::file_size(path), 12u);
  std::filesystem::remove(path);
}

TEST(ImageIo, CsvWritesRows) {
  const auto path =
      std::filesystem::temp_directory_path() / "mosaic_test.csv";
  {
    CsvWriter csv(path.string());
    csv.writeHeader({"a", "b"});
    csv.writeRow(std::vector<double>{1.5, 2.0});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1.5,2");
  std::filesystem::remove(path);
}

// ------------------------------------------------------------ parallel

TEST(Parallel, ComputesAllIndices) {
  std::vector<int> hits(1000, 0);
  parallelFor(0, hits.size(), [&](std::size_t i) { hits[i] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Parallel, EmptyRangeIsNoop) {
  bool touched = false;
  parallelFor(5, 5, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(Parallel, ExceptionPropagates) {
  EXPECT_THROW(parallelFor(0, 10,
                           [](std::size_t i) {
                             if (i == 3) throw InvalidArgument("inner");
                           }),
               InvalidArgument);
}

TEST(Parallel, ExceptionFromMidRangeStillCompletesOtherIterations) {
  // A throw from one chunk must propagate exactly once while the pool
  // shuts down cleanly (no hang, no crash); iterations that already ran
  // keep their side effects.
  std::vector<std::atomic<int>> hits(512);
  for (auto& h : hits) h.store(0);
  EXPECT_THROW(parallelFor(0, hits.size(),
                           [&](std::size_t i) {
                             hits[i].fetch_add(1);
                             if (i == 200) throw InvalidArgument("mid-range");
                           }),
               InvalidArgument);
  for (const auto& h : hits) EXPECT_LE(h.load(), 1);
  EXPECT_EQ(hits[200].load(), 1);
}

TEST(Parallel, RangeSmallerThanWorkerCount) {
  setParallelism(8);
  std::vector<std::atomic<int>> hits(3);
  for (auto& h : hits) h.store(0);
  parallelFor(0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  setParallelism(0);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, WorkerCountPositive) {
  EXPECT_GE(hardwareParallelism(), 1);
  EXPECT_THROW(setParallelism(-1), InvalidArgument);
}

TEST(Parallel, NestedParallelForComposes) {
  // The executor contract (docs/performance.md): a parallelFor inside a
  // parallelFor body enqueues steal-able subtasks onto the shared pool.
  // Every (outer, inner) pair must execute exactly once, the inner calls
  // must report being nested, and the call must drain without deadlock.
  setParallelism(4);
  constexpr std::size_t kOuter = 8, kInner = 64;
  std::vector<std::atomic<int>> cells(kOuter * kInner);
  for (auto& c : cells) c.store(0);
  std::atomic<int> nestedSeen{0};
  EXPECT_FALSE(inParallelRegion());
  parallelFor(0, kOuter, [&](std::size_t outer) {
    if (inParallelRegion()) nestedSeen.fetch_add(1);
    parallelFor(0, kInner, [&](std::size_t inner) {
      cells[outer * kInner + inner].fetch_add(1);
    });
  });
  setParallelism(0);
  EXPECT_FALSE(inParallelRegion());
  EXPECT_EQ(nestedSeen.load(), static_cast<int>(kOuter));
  for (const auto& c : cells) EXPECT_EQ(c.load(), 1);
}

TEST(Parallel, NestedCorrectAtEveryWorkerCount) {
  // Three-level nesting must drain (no deadlock) and hit every index
  // exactly once whether the pool is serial, tiny, or oversubscribed.
  for (const int workers : {1, 2, 8}) {
    setParallelism(workers);
    constexpr std::size_t kA = 4, kB = 8, kC = 16;
    std::vector<std::atomic<int>> cells(kA * kB * kC);
    for (auto& c : cells) c.store(0);
    parallelFor(0, kA, [&](std::size_t a) {
      parallelFor(0, kB, [&](std::size_t b) {
        parallelFor(0, kC, [&](std::size_t c) {
          cells[(a * kB + b) * kC + c].fetch_add(1);
        });
      });
    });
    for (const auto& c : cells) ASSERT_EQ(c.load(), 1) << workers;
  }
  setParallelism(0);
}

TEST(Parallel, NestedExceptionPropagatesToOuterCaller) {
  setParallelism(4);
  EXPECT_THROW(parallelFor(0, 8,
                           [](std::size_t outer) {
                             parallelFor(0, 32, [outer](std::size_t inner) {
                               if (outer == 3 && inner == 17) {
                                 throw InvalidArgument("nested");
                               }
                             });
                           }),
               InvalidArgument);
  setParallelism(0);
  EXPECT_FALSE(inParallelRegion());
}

TEST(Parallel, ThrowCancelsRemainingChunksPromptly) {
  // The cooperative-abort regression (docs/performance.md): the first
  // exception must cancel chunks that have not started, so a throwing
  // body over a large range finishes long before running every index.
  // Each iteration sleeps, so executing all of them would take ~200x
  // longer than the aborted run has any reason to.
  setParallelism(2);
  constexpr std::size_t kRange = 4000;
  std::atomic<std::size_t> executed{0};
  EXPECT_THROW(
      parallelFor(0, kRange,
                  [&](std::size_t i) {
                    if (i == 0) throw InvalidArgument("abort now");
                    executed.fetch_add(1);
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(200));
                  }),
      InvalidArgument);
  setParallelism(0);
  // At most the chunks already in flight ran; the rest were skipped.
  EXPECT_LT(executed.load(), kRange / 2);
}

TEST(Parallel, SpawnBackendStillServesAsOracle) {
  // The legacy spawn scheduler stays available for equivalence testing:
  // nested calls degrade to serial there, and results match the pool.
  setParallelBackend(ParallelBackend::kSpawn);
  EXPECT_EQ(parallelBackend(), ParallelBackend::kSpawn);
  setParallelism(4);
  std::vector<std::atomic<int>> cells(8 * 64);
  for (auto& c : cells) c.store(0);
  parallelFor(0, 8, [&](std::size_t outer) {
    parallelFor(0, 64, [&](std::size_t inner) {
      cells[outer * 64 + inner].fetch_add(1);
    });
  });
  for (const auto& c : cells) EXPECT_EQ(c.load(), 1);
  setParallelism(0);
  setParallelBackend(ParallelBackend::kPool);
}

TEST(Parallel, TaskGroupRunsWaitsAndRethrows) {
  setParallelism(4);
  {
    TaskGroup g;
    std::atomic<int> done{0};
    for (int i = 0; i < 100; ++i) g.run([&done] { done.fetch_add(1); });
    g.wait();
    EXPECT_EQ(done.load(), 100);
    EXPECT_FALSE(g.canceled());
  }
  {
    TaskGroup g;
    for (int i = 0; i < 50; ++i) {
      g.run([i] {
        if (i == 25) throw InvalidArgument("task 25");
      });
    }
    EXPECT_THROW(g.wait(), InvalidArgument);
    EXPECT_TRUE(g.canceled());
  }
  {
    TaskGroup g;
    std::atomic<int> ran{0};
    g.cancel();  // cancel before any run: all tasks are skipped
    for (int i = 0; i < 50; ++i) g.run([&ran] { ran.fetch_add(1); });
    g.wait();
    EXPECT_TRUE(g.canceled());
    EXPECT_EQ(ran.load(), 0);
  }
  setParallelism(0);
}

namespace teardown_probe {
std::atomic<int> calls{0};
void hook() { calls.fetch_add(1); }
}  // namespace teardown_probe

TEST(Parallel, ResizeRunsTeardownHooksAndRestartsPool) {
  // setParallelism to a different size joins the old workers (each runs
  // the registered teardown hooks) and the next parallelFor restarts the
  // pool at the new size. Mid-process resizes must keep working.
  registerWorkerTeardown(&teardown_probe::hook);
  setParallelism(3);  // 2 pool threads after first use
  std::atomic<int> sum{0};
  parallelFor(0, 64, [&](std::size_t) { sum.fetch_add(1); });
  EXPECT_EQ(poolStats().liveThreads, 2);
  const int before = teardown_probe::calls.load();

  setParallelism(5);  // resize: the 2 old workers tear down and join
  EXPECT_GE(teardown_probe::calls.load(), before + 2);
  EXPECT_EQ(poolStats().liveThreads, 0);
  parallelFor(0, 64, [&](std::size_t) { sum.fetch_add(1); });
  EXPECT_EQ(poolStats().liveThreads, 4);
  EXPECT_EQ(sum.load(), 128);

  const int preShutdown = teardown_probe::calls.load();
  shutdownParallelPool();  // explicit shutdown also tears down per worker
  EXPECT_GE(teardown_probe::calls.load(), preShutdown + 4);
  EXPECT_EQ(poolStats().liveThreads, 0);
  setParallelism(0);
}

TEST(Parallel, PoolStatsCountTasksAndConfiguredWorkers) {
  setParallelism(4);
  const PoolStats before = poolStats();
  EXPECT_EQ(before.configuredWorkers, 4);
  parallelFor(0, 1000, [](std::size_t) {});
  const PoolStats after = poolStats();
  EXPECT_GT(after.tasksExecuted, before.tasksExecuted);
  setParallelism(0);
  EXPECT_GE(poolStats().configuredWorkers, 1);
}

TEST(Parallel, IdleWorkersTrimThreadLocalState) {
  // A worker idle past the trim interval runs the teardown hooks once
  // (dropping cached scratch grids) without exiting; the next call still
  // works. Poll the pool's trim counter with a generous deadline so the
  // test stays robust on loaded machines.
  setParallelism(3);
  setPoolIdleTrimMs(50);
  parallelFor(0, 64, [](std::size_t) {});  // make sure workers are live
  const std::uint64_t before = poolStats().idleTrims;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (poolStats().idleTrims < before + 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(poolStats().idleTrims, before + 2);
  std::atomic<int> sum{0};
  parallelFor(0, 64, [&](std::size_t) { sum.fetch_add(1); });
  EXPECT_EQ(sum.load(), 64);
  setPoolIdleTrimMs(2000);
  setParallelism(0);
}

// ------------------------------------------------------------------ hash

// Golden values from the FNV-1a 64 reference vectors. Every stable digest
// in the system funnels through support/hash.hpp, so these pins guarantee
// the shared implementation matches the three it replaced byte for byte.
TEST(Hash, Fnv1aMatchesReferenceVectors) {
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a("foobar"), 0x85944171f73967e8ull);
}

TEST(Hash, HexIsSixteenLowercaseDigits) {
  EXPECT_EQ(Fnv1a::hashHex(0), "0000000000000000");
  EXPECT_EQ(Fnv1a::hashHex(0xdeadbeefull), "00000000deadbeef");
  EXPECT_EQ(Fnv1a().mix("foobar").hex(), "85944171f73967e8");
}

TEST(Hash, SeededConstructorPreservesLegacyDigests) {
  // serve::maskHashHex persists digests computed from a historical
  // (typo'd) seed; the seeded constructor must reproduce them exactly.
  const unsigned char bytes[] = {1, 2, 3};
  std::uint64_t expected = 1469598103934665603ull;
  for (const unsigned char b : bytes) {
    expected ^= b;
    expected *= 0x100000001b3ull;
  }
  EXPECT_EQ(fnv1a(bytes, sizeof bytes, 1469598103934665603ull), expected);
}

TEST(Hash, IntAndLongLongOfEqualValueHashIdentically) {
  EXPECT_EQ(Fnv1a().mix(42).digest(), Fnv1a().mix(42ll).digest());
  EXPECT_EQ(Fnv1a().mix(-7).digest(), Fnv1a().mix(-7ll).digest());
  // ...and differently from the same value as a double.
  EXPECT_NE(Fnv1a().mix(42).digest(), Fnv1a().mix(42.0).digest());
}

TEST(Hash, IncrementalEqualsOneShot) {
  const std::string s = "incremental-vs-oneshot";
  Fnv1a inc;
  inc.mix(s.substr(0, 5));
  inc.mix(s.substr(5));
  EXPECT_EQ(inc.digest(), fnv1a(s));
}

}  // namespace
}  // namespace mosaic
