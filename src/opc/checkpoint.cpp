/// \file checkpoint.cpp
/// Versioned binary serialization of the optimizer state (optimizer.hpp's
/// OptimizerCheckpoint). Doubles are stored verbatim so a resumed run
/// continues bit-identically. Files are host-endian: checkpoints are local
/// crash-recovery artifacts, not an interchange format.

#include <cstdint>
#include <cstdio>
#include <fstream>

#include "opc/optimizer.hpp"
#include "support/error.hpp"
#include "support/telemetry/trace.hpp"

namespace mosaic {
namespace {

constexpr std::uint32_t kMagic = 0x4d4f4350u;  // "MOCP"
// v2: IterationRecord gained wallMs. Older files are rejected, not migrated:
// checkpoints are crash-recovery artifacts tied to the writing binary.
constexpr std::uint32_t kVersion = 2;

void writeU32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

void writeI32(std::ostream& out, std::int32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

void writeF64(std::ostream& out, double v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

std::uint32_t readU32(std::istream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  MOSAIC_CHECK(in.good(), "checkpoint: truncated file");
  return v;
}

std::int32_t readI32(std::istream& in) {
  std::int32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  MOSAIC_CHECK(in.good(), "checkpoint: truncated file");
  return v;
}

double readF64(std::istream& in) {
  double v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  MOSAIC_CHECK(in.good(), "checkpoint: truncated file");
  return v;
}

void writeGrid(std::ostream& out, const RealGrid& g) {
  writeI32(out, g.rows());
  writeI32(out, g.cols());
  if (!g.empty()) {
    out.write(reinterpret_cast<const char*>(g.data()),
              static_cast<std::streamsize>(g.size() * sizeof(double)));
  }
}

RealGrid readGrid(std::istream& in) {
  const std::int32_t rows = readI32(in);
  const std::int32_t cols = readI32(in);
  if (rows == 0 && cols == 0) return {};
  MOSAIC_CHECK(rows > 0 && cols > 0 && rows <= (1 << 15) && cols <= (1 << 15),
               "checkpoint: implausible grid shape " << rows << "x" << cols);
  RealGrid g(rows, cols);
  in.read(reinterpret_cast<char*>(g.data()),
          static_cast<std::streamsize>(g.size() * sizeof(double)));
  MOSAIC_CHECK(in.good(), "checkpoint: truncated grid data");
  return g;
}

void writeRecord(std::ostream& out, const IterationRecord& r) {
  writeI32(out, r.iteration);
  writeF64(out, r.objective);
  writeF64(out, r.targetTerm);
  writeF64(out, r.pvbTerm);
  writeF64(out, r.rmsGradient);
  writeF64(out, r.stepSize);
  writeF64(out, r.wallMs);
  writeU32(out, (r.improved ? 1u : 0u) | (r.jumped ? 2u : 0u) |
                    (r.recovered ? 4u : 0u));
}

IterationRecord readRecord(std::istream& in) {
  IterationRecord r;
  r.iteration = readI32(in);
  r.objective = readF64(in);
  r.targetTerm = readF64(in);
  r.pvbTerm = readF64(in);
  r.rmsGradient = readF64(in);
  r.stepSize = readF64(in);
  r.wallMs = readF64(in);
  const std::uint32_t flags = readU32(in);
  r.improved = (flags & 1u) != 0;
  r.jumped = (flags & 2u) != 0;
  r.recovered = (flags & 4u) != 0;
  return r;
}

}  // namespace

void saveOptimizerCheckpoint(const std::string& path,
                             const OptimizerCheckpoint& ckpt) {
  MOSAIC_SPAN("checkpoint.save");
  MOSAIC_CHECK(!ckpt.params.empty(), "cannot checkpoint an empty P-grid");
  // Write to a sibling temp file, then rename: a crash mid-write never
  // clobbers the previous good checkpoint.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    MOSAIC_CHECK(out.good(), "cannot open for writing: " << tmp);
    writeU32(out, kMagic);
    writeU32(out, kVersion);
    writeI32(out, ckpt.iteration);
    writeF64(out, ckpt.step);
    writeF64(out, ckpt.previousValue);
    writeI32(out, ckpt.sinceImprovement);
    writeF64(out, ckpt.bestObjective);
    writeI32(out, ckpt.bestIteration);
    writeI32(out, ckpt.nonFiniteEvents);
    writeI32(out, ckpt.recoveries);
    writeGrid(out, ckpt.params);
    writeGrid(out, ckpt.bestMask);
    writeGrid(out, ckpt.velocity);
    writeGrid(out, ckpt.adamM);
    writeGrid(out, ckpt.adamV);
    writeU32(out, static_cast<std::uint32_t>(ckpt.history.size()));
    for (const IterationRecord& r : ckpt.history) writeRecord(out, r);
    MOSAIC_CHECK(out.good(), "write failed: " << tmp);
  }
  MOSAIC_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
               "cannot move checkpoint into place: " << path);
}

OptimizerCheckpoint loadOptimizerCheckpoint(const std::string& path) {
  MOSAIC_SPAN("checkpoint.load");
  std::ifstream in(path, std::ios::binary);
  MOSAIC_CHECK(in.good(), "cannot open checkpoint: " << path);
  MOSAIC_CHECK(readU32(in) == kMagic, "checkpoint: bad magic in " << path);
  MOSAIC_CHECK(readU32(in) == kVersion,
               "checkpoint: unsupported version in " << path);
  OptimizerCheckpoint ckpt;
  ckpt.iteration = readI32(in);
  ckpt.step = readF64(in);
  ckpt.previousValue = readF64(in);
  ckpt.sinceImprovement = readI32(in);
  ckpt.bestObjective = readF64(in);
  ckpt.bestIteration = readI32(in);
  ckpt.nonFiniteEvents = readI32(in);
  ckpt.recoveries = readI32(in);
  ckpt.params = readGrid(in);
  ckpt.bestMask = readGrid(in);
  ckpt.velocity = readGrid(in);
  ckpt.adamM = readGrid(in);
  ckpt.adamV = readGrid(in);
  MOSAIC_CHECK(!ckpt.params.empty(), "checkpoint: missing P-grid");
  MOSAIC_CHECK(ckpt.iteration >= 0, "checkpoint: negative iteration");
  const std::uint32_t count = readU32(in);
  MOSAIC_CHECK(count <= 1u << 20, "checkpoint: implausible history length");
  ckpt.history.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ckpt.history.push_back(readRecord(in));
  }
  return ckpt;
}

}  // namespace mosaic
