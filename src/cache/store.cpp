#include "cache/store.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <optional>
#include <system_error>
#include <thread>

#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/log.hpp"
#include "support/telemetry/metrics.hpp"
#include "support/telemetry/trace.hpp"
#include "support/timer.hpp"

namespace mosaic {
namespace {

namespace fs = std::filesystem;

constexpr std::uint32_t kMagic = 0x4d4f5350u;  // "MOSP"

// A window mask is at most a few thousand pixels on a side; larger
// dimensions are corrupt length bytes, not data.
constexpr std::int32_t kMaxGridSide = 1 << 14;

/// CRC-32 (IEEE 802.3, reflected) over a byte range. Detects the torn and
/// bit-rotted payloads that magic/length checks alone cannot.
std::uint32_t crc32(const void* data, std::size_t size) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void writeU32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}
void writeU64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}
void writeI32(std::ostream& out, std::int32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}
void writeF64(std::ostream& out, double v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
bool readRaw(std::istream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(T));
  return in.good();
}

/// Header of one entry file, as read back. Kept separate from the payload
/// so the startup scan can index a directory without touching mask bytes.
struct EntryHeader {
  TileFingerprint fp;
  std::int32_t iterations = 0;
  double objective = 0.0;
  std::int32_t rows = 0;
  std::int32_t cols = 0;
  std::uint32_t payloadCrc = 0;
};

/// Read + validate an entry header. Returns nullopt on any malformation.
std::optional<EntryHeader> readHeader(std::istream& in) {
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  if (!readRaw(in, &magic) || magic != kMagic) return std::nullopt;
  if (!readRaw(in, &version) || version != PatternStore::kFormatVersion) {
    return std::nullopt;
  }
  EntryHeader h;
  std::uint32_t emptyFlag = 0;
  if (!readRaw(in, &h.fp.coreHash) || !readRaw(in, &h.fp.windowHash) ||
      !readRaw(in, &h.fp.configHash) || !readRaw(in, &h.fp.anchorPxRow) ||
      !readRaw(in, &h.fp.anchorPxCol) || !readRaw(in, &emptyFlag) ||
      !readRaw(in, &h.iterations) || !readRaw(in, &h.objective) ||
      !readRaw(in, &h.rows) || !readRaw(in, &h.cols) ||
      !readRaw(in, &h.payloadCrc)) {
    return std::nullopt;
  }
  if (emptyFlag > 1) return std::nullopt;
  h.fp.empty = emptyFlag != 0;
  if (h.rows <= 0 || h.cols <= 0 || h.rows > kMaxGridSide ||
      h.cols > kMaxGridSide || h.iterations < 0) {
    return std::nullopt;
  }
  return h;
}

/// Full load: header + payload + CRC + exact-length check.
std::optional<std::pair<EntryHeader, RealGrid>> readEntryFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return std::nullopt;
  const std::optional<EntryHeader> header = readHeader(in);
  if (!header) return std::nullopt;
  RealGrid mask(header->rows, header->cols);
  in.read(reinterpret_cast<char*>(mask.data()),
          static_cast<std::streamsize>(mask.size() * sizeof(double)));
  if (!in.good()) return std::nullopt;
  in.peek();
  if (!in.eof()) return std::nullopt;  // trailing bytes: not our file
  if (crc32(mask.data(), mask.size() * sizeof(double)) !=
      header->payloadCrc) {
    return std::nullopt;
  }
  return std::make_pair(*header, std::move(mask));
}

std::string entryFileName(const TileFingerprint& fp) {
  return "pat_" + fp.keyHex() + ".bin";
}

}  // namespace

const char* cacheHitKindName(CacheHitKind kind) {
  switch (kind) {
    case CacheHitKind::kMiss:
      return "miss";
    case CacheHitKind::kExact:
      return "exact";
    case CacheHitKind::kTranslated:
      return "translated";
    case CacheHitKind::kNearMiss:
      return "near_miss";
  }
  return "unknown";
}

RealGrid shiftMask(const RealGrid& mask, int dRow, int dCol, double fill) {
  if (dRow == 0 && dCol == 0) return mask;
  RealGrid out(mask.rows(), mask.cols(), fill);
  const int r0 = std::max(0, dRow);
  const int r1 = std::min(mask.rows(), mask.rows() + dRow);
  const int c0 = std::max(0, dCol);
  const int c1 = std::min(mask.cols(), mask.cols() + dCol);
  for (int r = r0; r < r1; ++r) {
    for (int c = c0; c < c1; ++c) {
      out(r, c) = mask(r - dRow, c - dCol);
    }
  }
  return out;
}

std::uint64_t PatternStore::coreIndexKey(const TileFingerprint& fp) {
  return Fnv1a().mix(fp.coreHash).mix(fp.configHash).digest();
}

PatternStore::PatternStore(const PatternStoreConfig& cfg) : cfg_(cfg) {
  MOSAIC_CHECK(!cfg_.dir.empty(), "pattern store needs a directory");
  MOSAIC_CHECK(cfg_.maxBytes >= 0, "pattern store size cap must be >= 0");
  fs::create_directories(cfg_.dir);
  scanDirectory();
}

void PatternStore::scanDirectory() {
  // Index whatever a previous run (or another process) left behind. Only
  // headers are read; payload CRCs are checked lazily on first hit. The
  // initial LRU order follows file modification time, so a cap-shrinking
  // restart evicts the oldest solutions first.
  struct Found {
    fs::file_time_type mtime;
    Entry entry;
  };
  std::vector<Found> found;
  std::error_code ec;
  for (const fs::directory_entry& de : fs::directory_iterator(cfg_.dir, ec)) {
    if (!de.is_regular_file()) continue;
    const std::string name = de.path().filename().string();
    if (name.rfind("pat_", 0) != 0 ||
        name.find(".bin") != name.size() - 4) {
      continue;
    }
    const std::string path = de.path().string();
    std::ifstream in(path, std::ios::binary);
    std::optional<EntryHeader> header;
    if (in.good()) header = readHeader(in);
    if (!header) {
      LOG_WARN("pattern store: quarantining unreadable entry " << name);
      quarantineEntry(0, path);
      continue;
    }
    Entry entry;
    entry.fp = header->fp;
    entry.path = path;
    entry.bytes = static_cast<long long>(de.file_size(ec));
    found.push_back({de.last_write_time(ec), std::move(entry)});
  }
  std::sort(found.begin(), found.end(),
            [](const Found& a, const Found& b) { return a.mtime < b.mtime; });
  for (Found& f : found) {
    f.entry.lastTouch = clock_.fetch_add(1, std::memory_order_relaxed);
    totalBytes_.fetch_add(f.entry.bytes, std::memory_order_relaxed);
    indexEntry(f.entry);
  }
  evictToCap();
}

void PatternStore::indexEntry(const Entry& entry) {
  const std::uint64_t key = entry.fp.combined();
  {
    Shard& shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.entries[key] = entry;
  }
  const std::uint64_t coreKey = coreIndexKey(entry.fp);
  Shard& coreShard = shardFor(coreKey);
  std::lock_guard<std::mutex> lock(coreShard.mutex);
  coreShard.byCore.emplace(coreKey, key);
}

void PatternStore::removeFromIndexLocked(Shard& shard,
                                         std::uint64_t combinedKey) {
  shard.entries.erase(combinedKey);
}

void PatternStore::quarantineEntry(std::uint64_t combinedKey,
                                   const std::string& path) {
  if (combinedKey != 0) {
    Shard& shard = shardFor(combinedKey);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.entries.find(combinedKey);
    if (it != shard.entries.end()) {
      totalBytes_.fetch_sub(it->second.bytes, std::memory_order_relaxed);
      shard.entries.erase(it);
    }
    // The byCore side is cleaned up lazily: near-miss resolution skips
    // keys whose entry is gone.
  }
  std::error_code ec;
  const fs::path src(path);
  const fs::path qdir = fs::path(cfg_.dir) / "quarantine";
  fs::create_directories(qdir, ec);
  const std::string unique =
      src.filename().string() + "." +
      std::to_string(tmpCounter_.fetch_add(1, std::memory_order_relaxed));
  fs::rename(src, qdir / unique, ec);
  if (ec) fs::remove(src, ec);  // cross-device or permission trouble
  quarantined_.fetch_add(1, std::memory_order_relaxed);
  telemetry::metrics().counter("cache.quarantined").add();
}

CacheLookup PatternStore::lookup(const TileFingerprint& fp) {
  MOSAIC_SPAN("cache.lookup");
  WallTimer timer;
  CacheLookup result;

  // Exact key (possibly translated placement) first.
  const std::uint64_t key = fp.combined();
  for (;;) {
    Entry candidate;
    bool have = false;
    {
      Shard& shard = shardFor(key);
      std::lock_guard<std::mutex> lock(shard.mutex);
      const auto it = shard.entries.find(key);
      if (it != shard.entries.end() && it->second.fp.sameKey(fp)) {
        it->second.lastTouch = clock_.fetch_add(1, std::memory_order_relaxed);
        candidate = it->second;
        have = true;
      }
    }
    if (!have) break;
    const auto loaded = readEntryFile(candidate.path);
    if (!loaded || !loaded->first.fp.sameKey(fp)) {
      LOG_WARN("pattern store: corrupt entry " << candidate.path
                                               << ", quarantining");
      quarantineEntry(key, candidate.path);
      continue;  // the index no longer holds the key; falls through below
    }
    result.solution.mask = std::move(loaded->second);
    result.solution.iterations = loaded->first.iterations;
    result.solution.objective = loaded->first.objective;
    result.shiftPxRow = fp.anchorPxRow - loaded->first.fp.anchorPxRow;
    result.shiftPxCol = fp.anchorPxCol - loaded->first.fp.anchorPxCol;
    if (result.shiftPxRow == 0 && result.shiftPxCol == 0) {
      result.kind = CacheHitKind::kExact;
      exactHits_.fetch_add(1, std::memory_order_relaxed);
      telemetry::metrics().counter("cache.hit").add();
    } else {
      result.kind = CacheHitKind::kTranslated;
      translatedHits_.fetch_add(1, std::memory_order_relaxed);
      telemetry::metrics().counter("cache.hit").add();
      telemetry::metrics().counter("cache.warm_start").add();
    }
    telemetry::metrics().histogram("cache.lookup_ms").record(
        timer.seconds() * 1e6);
    return result;
  }

  // Near miss: same core and solver, different halo. Prefer the most
  // recently used candidate.
  const std::uint64_t coreKey = coreIndexKey(fp);
  std::vector<std::uint64_t> candidates;
  {
    Shard& coreShard = shardFor(coreKey);
    std::lock_guard<std::mutex> lock(coreShard.mutex);
    const auto range = coreShard.byCore.equal_range(coreKey);
    for (auto it = range.first; it != range.second; ++it) {
      candidates.push_back(it->second);
    }
  }
  std::vector<std::pair<std::uint64_t, Entry>> live;  // (lastTouch, entry)
  for (const std::uint64_t candidateKey : candidates) {
    Shard& shard = shardFor(candidateKey);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.entries.find(candidateKey);
    if (it == shard.entries.end() || !it->second.fp.sameCore(fp)) continue;
    live.emplace_back(it->second.lastTouch, it->second);
  }
  std::sort(live.begin(), live.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (auto& [touch, entry] : live) {
    const auto loaded = readEntryFile(entry.path);
    if (!loaded || !loaded->first.fp.sameCore(fp)) {
      LOG_WARN("pattern store: corrupt entry " << entry.path
                                               << ", quarantining");
      quarantineEntry(entry.fp.combined(), entry.path);
      continue;
    }
    {
      Shard& shard = shardFor(entry.fp.combined());
      std::lock_guard<std::mutex> lock(shard.mutex);
      const auto it = shard.entries.find(entry.fp.combined());
      if (it != shard.entries.end()) {
        it->second.lastTouch = clock_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    result.kind = CacheHitKind::kNearMiss;
    result.solution.mask = std::move(loaded->second);
    result.solution.iterations = loaded->first.iterations;
    result.solution.objective = loaded->first.objective;
    result.shiftPxRow = fp.anchorPxRow - loaded->first.fp.anchorPxRow;
    result.shiftPxCol = fp.anchorPxCol - loaded->first.fp.anchorPxCol;
    nearMissHits_.fetch_add(1, std::memory_order_relaxed);
    telemetry::metrics().counter("cache.warm_start").add();
    telemetry::metrics().histogram("cache.lookup_ms").record(
        timer.seconds() * 1e6);
    return result;
  }

  misses_.fetch_add(1, std::memory_order_relaxed);
  telemetry::metrics().counter("cache.miss").add();
  telemetry::metrics().histogram("cache.lookup_ms").record(timer.seconds() *
                                                           1e6);
  return result;
}

bool PatternStore::insert(const TileFingerprint& fp,
                          const CachedSolution& solution) {
  MOSAIC_SPAN("cache.insert");
  MOSAIC_CHECK(!solution.mask.empty(), "cannot cache an empty mask");
  MOSAIC_CHECK(solution.mask.rows() <= kMaxGridSide &&
                   solution.mask.cols() <= kMaxGridSide,
               "mask too large for the pattern store");
  const std::uint64_t key = fp.combined();
  {
    Shard& shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.entries.count(key) != 0) return false;  // first solve wins
  }

  const fs::path finalPath = fs::path(cfg_.dir) / entryFileName(fp);
  const fs::path tmpPath =
      fs::path(cfg_.dir) /
      (entryFileName(fp) + ".tmp" +
       std::to_string(tmpCounter_.fetch_add(1, std::memory_order_relaxed)));
  {
    std::ofstream out(tmpPath, std::ios::binary | std::ios::trunc);
    MOSAIC_CHECK(out.good(),
                 "pattern store: cannot open for writing: " << tmpPath);
    writeU32(out, kMagic);
    writeU32(out, kFormatVersion);
    writeU64(out, fp.coreHash);
    writeU64(out, fp.windowHash);
    writeU64(out, fp.configHash);
    writeI32(out, fp.anchorPxRow);
    writeI32(out, fp.anchorPxCol);
    writeU32(out, fp.empty ? 1u : 0u);
    writeI32(out, solution.iterations);
    writeF64(out, solution.objective);
    writeI32(out, solution.mask.rows());
    writeI32(out, solution.mask.cols());
    writeU32(out, crc32(solution.mask.data(),
                        solution.mask.size() * sizeof(double)));
    out.write(reinterpret_cast<const char*>(solution.mask.data()),
              static_cast<std::streamsize>(solution.mask.size() *
                                           sizeof(double)));
    MOSAIC_CHECK(out.good(), "pattern store: write failed: " << tmpPath);
  }
  // Atomic publication: readers see the old state or the complete entry,
  // never a torn file.
  std::error_code ec;
  fs::rename(tmpPath, finalPath, ec);
  if (ec) {
    fs::remove(tmpPath, ec);
    MOSAIC_CHECK(false, "pattern store: cannot publish entry: " << finalPath);
  }

  Entry entry;
  entry.fp = fp;
  entry.path = finalPath.string();
  entry.bytes = static_cast<long long>(fs::file_size(finalPath, ec));
  entry.lastTouch = clock_.fetch_add(1, std::memory_order_relaxed);
  bool raced = false;
  {
    Shard& shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    raced = !shard.entries.emplace(key, entry).second;
  }
  if (!raced) {
    totalBytes_.fetch_add(entry.bytes, std::memory_order_relaxed);
    const std::uint64_t coreKey = coreIndexKey(fp);
    Shard& coreShard = shardFor(coreKey);
    {
      std::lock_guard<std::mutex> lock(coreShard.mutex);
      coreShard.byCore.emplace(coreKey, key);
    }
    inserts_.fetch_add(1, std::memory_order_relaxed);
    telemetry::metrics().counter("cache.insert").add();
  }
  evictToCap();
  return !raced;
}

void PatternStore::evictToCap() {
  if (cfg_.maxBytes <= 0) return;
  std::lock_guard<std::mutex> evictLock(evictMutex_);
  while (totalBytes_.load(std::memory_order_relaxed) > cfg_.maxBytes) {
    // Victim = globally least-recently-touched entry. A linear sweep over
    // the index is fine: eviction is rare (cap overflow only) and the
    // index holds metadata, not masks.
    std::uint64_t victimKey = 0;
    std::uint64_t victimTouch = ~0ull;
    bool found = false;
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      for (const auto& [k, e] : shard.entries) {
        if (e.lastTouch < victimTouch) {
          victimTouch = e.lastTouch;
          victimKey = k;
          found = true;
        }
      }
    }
    if (!found) break;
    Entry victim;
    {
      Shard& shard = shardFor(victimKey);
      std::lock_guard<std::mutex> lock(shard.mutex);
      const auto it = shard.entries.find(victimKey);
      if (it == shard.entries.end()) continue;
      victim = it->second;
      shard.entries.erase(it);
    }
    totalBytes_.fetch_sub(victim.bytes, std::memory_order_relaxed);
    std::error_code ec;
    fs::remove(victim.path, ec);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    telemetry::metrics().counter("cache.evict").add();
    LOG_DEBUG("pattern store: evicted " << victim.path << " ("
                                        << victim.bytes << " bytes)");
  }
}

PatternStoreStats PatternStore::stats() const {
  PatternStoreStats s;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    s.entries += static_cast<long long>(shard.entries.size());
  }
  s.bytes = totalBytes_.load(std::memory_order_relaxed);
  s.exactHits = exactHits_.load(std::memory_order_relaxed);
  s.translatedHits = translatedHits_.load(std::memory_order_relaxed);
  s.nearMissHits = nearMissHits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.quarantined = quarantined_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace mosaic
