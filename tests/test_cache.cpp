/// \file test_cache.cpp
/// Pattern-library mask cache: fingerprint canonicalization, the
/// persistent store (roundtrip, quarantine-and-recompute, LRU eviction,
/// concurrent hammering), the ECO fingerprint manifest, and the
/// end-to-end warm-chip / incremental re-OPC runs (docs/caching.md).

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cache/fingerprint.hpp"
#include "cache/manifest.hpp"
#include "cache/store.hpp"
#include "opc/mosaic.hpp"
#include "suite/testcases.hpp"
#include "tile/scheduler.hpp"

namespace mosaic {
namespace {

namespace fs = std::filesystem;

/// Per-test scratch directory, wiped on entry so reruns start clean.
std::string freshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  fs::remove_all(dir);
  return dir;
}

// ------------------------------------------------------------- fingerprint

constexpr int kPixel = 16;
const RectNm kCore{128, 128, 640, 640};  // 512 nm core in a 768 nm window

Layout window768(const std::vector<RectNm>& rects) {
  Layout window;
  window.name = "win";
  window.sizeNm = 768;
  for (const RectNm& r : rects) window.addRect(r.x0, r.y0, r.x1, r.y1);
  return window;
}

std::vector<RectNm> shifted(std::vector<RectNm> rects, int dx, int dy) {
  for (RectNm& r : rects) {
    r.x0 += dx;
    r.x1 += dx;
    r.y0 += dy;
    r.y1 += dy;
  }
  return rects;
}

const std::vector<RectNm> kRects{{200, 200, 320, 280}, {400, 300, 460, 500}};

TEST(Fingerprint, WholePixelTranslationKeepsTheKey) {
  const std::uint64_t cfg = 0x1234u;
  const TileFingerprint a =
      fingerprintWindow(window768(kRects), kCore, kPixel, cfg);
  const TileFingerprint b = fingerprintWindow(
      window768(shifted(kRects, 2 * kPixel, kPixel)), kCore, kPixel, cfg);
  EXPECT_TRUE(a.sameKey(b));
  EXPECT_EQ(a.combined(), b.combined());
  // The placement difference lives in the anchor, not the hashes.
  EXPECT_EQ(b.anchorPxCol - a.anchorPxCol, 2);
  EXPECT_EQ(b.anchorPxRow - a.anchorPxRow, 1);
  EXPECT_FALSE(a == b);
}

TEST(Fingerprint, SubPixelShiftIsADifferentProblem) {
  const std::uint64_t cfg = 0x1234u;
  const TileFingerprint a =
      fingerprintWindow(window768(kRects), kCore, kPixel, cfg);
  const TileFingerprint b = fingerprintWindow(
      window768(shifted(kRects, kPixel / 2, 0)), kCore, kPixel, cfg);
  // Half-pixel phase rasterizes differently; the phase is folded into the
  // hashes, so this must not collide with the aligned placement.
  EXPECT_FALSE(a.sameKey(b));
}

TEST(Fingerprint, MovedCoreRectChangesTheCoreHash) {
  const std::uint64_t cfg = 0x1234u;
  std::vector<RectNm> moved = kRects;
  moved[1].x0 += 48;
  moved[1].x1 += 48;
  const TileFingerprint a =
      fingerprintWindow(window768(kRects), kCore, kPixel, cfg);
  const TileFingerprint b =
      fingerprintWindow(window768(moved), kCore, kPixel, cfg);
  EXPECT_NE(a.coreHash, b.coreHash);
  EXPECT_FALSE(a.sameCore(b));
  EXPECT_FALSE(a.sameKey(b));
}

TEST(Fingerprint, HaloOnlyEditIsANearMiss) {
  const std::uint64_t cfg = 0x1234u;
  std::vector<RectNm> withHalo = kRects;
  withHalo.push_back({0, 0, 64, 64});  // entirely outside the core
  const TileFingerprint a =
      fingerprintWindow(window768(kRects), kCore, kPixel, cfg);
  const TileFingerprint b =
      fingerprintWindow(window768(withHalo), kCore, kPixel, cfg);
  EXPECT_EQ(a.coreHash, b.coreHash);
  EXPECT_EQ(a.anchorPxRow, b.anchorPxRow);  // anchor from core content only
  EXPECT_EQ(a.anchorPxCol, b.anchorPxCol);
  EXPECT_NE(a.windowHash, b.windowHash);
  EXPECT_TRUE(a.sameCore(b));
  EXPECT_FALSE(a.sameKey(b));
}

TEST(Fingerprint, ConfigHashSeparatesOtherwiseEqualGeometry) {
  const TileFingerprint a =
      fingerprintWindow(window768(kRects), kCore, kPixel, 0x1111u);
  const TileFingerprint b =
      fingerprintWindow(window768(kRects), kCore, kPixel, 0x2222u);
  EXPECT_EQ(a.coreHash, b.coreHash);
  EXPECT_EQ(a.windowHash, b.windowHash);
  EXPECT_FALSE(a.sameKey(b));
  EXPECT_FALSE(a.sameCore(b));
}

TEST(Fingerprint, EmptyWindowIsFlagged) {
  const TileFingerprint fp =
      fingerprintWindow(window768({}), kCore, kPixel, 0x1u);
  EXPECT_TRUE(fp.empty);
  const TileFingerprint nonEmpty =
      fingerprintWindow(window768(kRects), kCore, kPixel, 0x1u);
  EXPECT_FALSE(nonEmpty.empty);
  EXPECT_NE(fp.combined(), nonEmpty.combined());
}

TEST(Fingerprint, IltDigestIgnoresTheDeadlineOnly) {
  const IltConfig base = defaultIltConfig(OpcMethod::kMosaicFast, kPixel);
  IltConfig withDeadline = base;
  withDeadline.deadlineSeconds = 42.0;
  // A wall-clock budget changes when a run stops, not what the converged
  // solution is — it must not fragment the cache key space.
  EXPECT_EQ(iltConfigDigest(base), iltConfigDigest(withDeadline));
  IltConfig moreIters = base;
  moreIters.maxIterations += 1;
  EXPECT_NE(iltConfigDigest(base), iltConfigDigest(moreIters));
}

TEST(Fingerprint, SolverDigestCoversMethodAndRaster) {
  const OpticsConfig optics;
  const IltConfig ilt = defaultIltConfig(OpcMethod::kMosaicFast, kPixel);
  const std::uint64_t d = solverConfigDigest(optics, ilt, 0, 1024, kPixel);
  EXPECT_NE(d, solverConfigDigest(optics, ilt, 1, 1024, kPixel));
  EXPECT_NE(d, solverConfigDigest(optics, ilt, 0, 2048, kPixel));
  EXPECT_NE(d, solverConfigDigest(optics, ilt, 0, 1024, kPixel * 2));
}

// --------------------------------------------------------------- shiftMask

TEST(ShiftMask, TranslatesContentAndFillsVacatedCells) {
  RealGrid g(3, 3);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) g.at(r, c) = r * 3 + c;
  }
  const RealGrid out = shiftMask(g, 1, -1, 9.0);
  ASSERT_EQ(out.rows(), 3);
  ASSERT_EQ(out.cols(), 3);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      const int srcR = r - 1;
      const int srcC = c + 1;
      const bool inside = srcR >= 0 && srcR < 3 && srcC >= 0 && srcC < 3;
      EXPECT_EQ(out.at(r, c), inside ? g.at(srcR, srcC) : 9.0)
          << "at (" << r << "," << c << ")";
    }
  }
  // Zero shift is the identity.
  const RealGrid same = shiftMask(g, 0, 0, 9.0);
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_EQ(same.data()[i], g.data()[i]);
  }
}

// ------------------------------------------------------------------- store

TileFingerprint fakeFp(std::uint64_t core, std::uint64_t window,
                       std::uint64_t config, int anchorRow = 0,
                       int anchorCol = 0) {
  TileFingerprint fp;
  fp.coreHash = core;
  fp.windowHash = window;
  fp.configHash = config;
  fp.anchorPxRow = anchorRow;
  fp.anchorPxCol = anchorCol;
  return fp;
}

RealGrid patternMask(int rows, int cols, double seed) {
  RealGrid mask(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) mask.at(r, c) = seed + r * cols + c;
  }
  return mask;
}

/// The single on-disk entry file of a store directory (excluding temp and
/// quarantined files). Fails the test when there is not exactly one.
std::string soleEntryPath(const std::string& dir) {
  std::string found;
  for (const fs::directory_entry& de : fs::directory_iterator(dir)) {
    if (!de.is_regular_file()) continue;
    const std::string name = de.path().filename().string();
    if (name.rfind("pat_", 0) == 0 && name.find(".bin") == name.size() - 4) {
      EXPECT_TRUE(found.empty()) << "more than one entry in " << dir;
      found = de.path().string();
    }
  }
  EXPECT_FALSE(found.empty()) << "no entry file in " << dir;
  return found;
}

int quarantineCount(const std::string& dir) {
  const fs::path qdir = fs::path(dir) / "quarantine";
  if (!fs::exists(qdir)) return 0;
  int n = 0;
  for (const fs::directory_entry& de : fs::directory_iterator(qdir)) {
    if (de.is_regular_file()) ++n;
  }
  return n;
}

TEST(PatternStore, RoundtripsAnExactHit) {
  PatternStore store({freshDir("mosaic_cache_roundtrip"), 0});
  const TileFingerprint fp = fakeFp(0xAAu, 0xBBu, 0xCCu, 3, 4);
  CachedSolution sol;
  sol.mask = patternMask(8, 8, 0.5);
  sol.iterations = 7;
  sol.objective = -1.25;
  EXPECT_TRUE(store.insert(fp, sol));
  EXPECT_FALSE(store.insert(fp, sol)) << "first solve must win";

  const CacheLookup hit = store.lookup(fp);
  ASSERT_EQ(hit.kind, CacheHitKind::kExact);
  EXPECT_EQ(hit.shiftPxRow, 0);
  EXPECT_EQ(hit.shiftPxCol, 0);
  EXPECT_EQ(hit.solution.iterations, 7);
  EXPECT_EQ(hit.solution.objective, -1.25);
  ASSERT_EQ(hit.solution.mask.rows(), 8);
  ASSERT_EQ(hit.solution.mask.cols(), 8);
  for (std::size_t i = 0; i < sol.mask.size(); ++i) {
    ASSERT_EQ(hit.solution.mask.data()[i], sol.mask.data()[i]);
  }

  const PatternStoreStats stats = store.stats();
  EXPECT_EQ(stats.entries, 1);
  EXPECT_GT(stats.bytes, 0);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.exactHits, 1u);
  EXPECT_EQ(stats.misses, 0u);
}

TEST(PatternStore, TranslatedPlacementReportsTheShift) {
  PatternStore store({freshDir("mosaic_cache_translated"), 0});
  const TileFingerprint stored = fakeFp(0xAAu, 0xBBu, 0xCCu, 1, 1);
  CachedSolution sol;
  sol.mask = patternMask(8, 8, 0.0);
  ASSERT_TRUE(store.insert(stored, sol));

  const TileFingerprint query = fakeFp(0xAAu, 0xBBu, 0xCCu, 3, -2);
  const CacheLookup hit = store.lookup(query);
  ASSERT_EQ(hit.kind, CacheHitKind::kTranslated);
  EXPECT_EQ(hit.shiftPxRow, 2);    // query anchor minus stored anchor
  EXPECT_EQ(hit.shiftPxCol, -3);
  EXPECT_EQ(store.stats().translatedHits, 1u);
}

TEST(PatternStore, SameCoreDifferentHaloIsANearMiss) {
  PatternStore store({freshDir("mosaic_cache_nearmiss"), 0});
  CachedSolution sol;
  sol.mask = patternMask(8, 8, 2.0);
  ASSERT_TRUE(store.insert(fakeFp(0xAAu, 0xB1u, 0xCCu), sol));

  const CacheLookup near = store.lookup(fakeFp(0xAAu, 0xB2u, 0xCCu));
  EXPECT_EQ(near.kind, CacheHitKind::kNearMiss);
  // Same geometry under a different solver config must not match at all.
  const CacheLookup miss = store.lookup(fakeFp(0xAAu, 0xB1u, 0xDDu));
  EXPECT_EQ(miss.kind, CacheHitKind::kMiss);
  const PatternStoreStats stats = store.stats();
  EXPECT_EQ(stats.nearMissHits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(PatternStore, ReopenedStoreIndexesExistingEntries) {
  const std::string dir = freshDir("mosaic_cache_reopen");
  const TileFingerprint fp = fakeFp(0x11u, 0x22u, 0x33u);
  CachedSolution sol;
  sol.mask = patternMask(8, 8, 4.0);
  sol.iterations = 3;
  {
    PatternStore store({dir, 0});
    ASSERT_TRUE(store.insert(fp, sol));
  }
  PatternStore reopened({dir, 0});
  EXPECT_EQ(reopened.stats().entries, 1);
  const CacheLookup hit = reopened.lookup(fp);
  ASSERT_EQ(hit.kind, CacheHitKind::kExact);
  EXPECT_EQ(hit.solution.iterations, 3);
}

TEST(PatternStore, CorruptPayloadIsQuarantinedAndRecomputed) {
  const std::string dir = freshDir("mosaic_cache_corrupt");
  PatternStore store({dir, 0});
  const TileFingerprint fp = fakeFp(0x77u, 0x88u, 0x99u);
  CachedSolution sol;
  sol.mask = patternMask(8, 8, 1.0);
  ASSERT_TRUE(store.insert(fp, sol));

  // Flip one payload byte behind the store's back: the header still parses,
  // so only the CRC can catch it.
  const std::string path = soleEntryPath(dir);
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekp(-1, std::ios::end);
    const char poison = '\x5a';
    f.write(&poison, 1);
  }

  const CacheLookup poisoned = store.lookup(fp);
  EXPECT_EQ(poisoned.kind, CacheHitKind::kMiss);
  EXPECT_EQ(store.stats().quarantined, 1u);
  EXPECT_EQ(store.stats().entries, 0);
  EXPECT_EQ(quarantineCount(dir), 1) << "poisoned file must move, not stay";

  // Recompute-and-reinsert must succeed and hit again: the key is free.
  ASSERT_TRUE(store.insert(fp, sol));
  EXPECT_EQ(store.lookup(fp).kind, CacheHitKind::kExact);
}

TEST(PatternStore, TruncatedEntryIsQuarantinedOnScan) {
  const std::string dir = freshDir("mosaic_cache_truncated");
  const TileFingerprint fp = fakeFp(0x55u, 0x66u, 0x77u);
  {
    PatternStore store({dir, 0});
    CachedSolution sol;
    sol.mask = patternMask(8, 8, 3.0);
    ASSERT_TRUE(store.insert(fp, sol));
  }
  fs::resize_file(soleEntryPath(dir), 10);  // torn mid-header

  PatternStore reopened({dir, 0});
  EXPECT_EQ(reopened.stats().entries, 0);
  EXPECT_EQ(reopened.stats().quarantined, 1u);
  EXPECT_EQ(reopened.lookup(fp).kind, CacheHitKind::kMiss);
  EXPECT_EQ(quarantineCount(dir), 1);
}

TEST(PatternStore, ByteCapEvictsLeastRecentlyUsed) {
  // Learn the per-entry file size first, then cap the store at 3 entries.
  const std::string sizerDir = freshDir("mosaic_cache_sizer");
  long long entryBytes = 0;
  {
    PatternStore sizer({sizerDir, 0});
    CachedSolution sol;
    sol.mask = patternMask(8, 8, 0.0);
    ASSERT_TRUE(sizer.insert(fakeFp(1, 1, 1), sol));
    entryBytes = sizer.stats().bytes;
  }
  ASSERT_GT(entryBytes, 0);

  PatternStore store({freshDir("mosaic_cache_lru"), 3 * entryBytes});
  for (std::uint64_t k = 1; k <= 5; ++k) {
    CachedSolution sol;
    sol.mask = patternMask(8, 8, static_cast<double>(k));
    ASSERT_TRUE(store.insert(fakeFp(k, k, k), sol));
  }
  const PatternStoreStats stats = store.stats();
  EXPECT_EQ(stats.entries, 3);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_LE(stats.bytes, 3 * entryBytes);
  // Insertion order is the touch order: 1 and 2 are gone, 5 survives.
  EXPECT_EQ(store.lookup(fakeFp(1, 1, 1)).kind, CacheHitKind::kMiss);
  EXPECT_EQ(store.lookup(fakeFp(2, 2, 2)).kind, CacheHitKind::kMiss);
  EXPECT_EQ(store.lookup(fakeFp(5, 5, 5)).kind, CacheHitKind::kExact);
}

TEST(PatternStore, SurvivesAnEightThreadHammer) {
  PatternStore store({freshDir("mosaic_cache_hammer"), 0});
  constexpr int kThreads = 8;
  constexpr int kKeys = 16;
  constexpr int kOpsPerThread = 200;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      for (int op = 0; op < kOpsPerThread; ++op) {
        const std::uint64_t k = 1 + (op / 2 + t) % kKeys;
        const TileFingerprint fp = fakeFp(k, k * 31, k * 131);
        if (op % 2 == 0) {
          CachedSolution sol;
          sol.mask = patternMask(16, 16, static_cast<double>(k));
          sol.iterations = static_cast<int>(k);
          store.insert(fp, sol);  // losing the first-wins race is fine
        } else {
          const CacheLookup hit = store.lookup(fp);
          if (hit.kind == CacheHitKind::kExact) {
            // Entries are keyed by content: a hit must carry that key's
            // mask, never a torn or mismatched one.
            ASSERT_EQ(hit.solution.mask.at(0, 0), static_cast<double>(k));
            ASSERT_EQ(hit.solution.iterations, static_cast<int>(k));
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  const PatternStoreStats stats = store.stats();
  EXPECT_EQ(stats.entries, kKeys);
  EXPECT_EQ(stats.inserts, static_cast<std::uint64_t>(kKeys));
  EXPECT_EQ(stats.quarantined, 0u);
  for (std::uint64_t k = 1; k <= kKeys; ++k) {
    const CacheLookup hit = store.lookup(fakeFp(k, k * 31, k * 131));
    ASSERT_EQ(hit.kind, CacheHitKind::kExact) << "key " << k;
    EXPECT_EQ(hit.solution.mask.at(0, 0), static_cast<double>(k));
  }
}

// ---------------------------------------------------------------- manifest

TEST(Manifest, RoundtripsEntriesExactly) {
  const std::string dir = freshDir("mosaic_cache_manifest");
  fs::create_directories(dir);
  std::vector<ManifestEntry> entries(2);
  entries[0].coreXNm = 512;
  entries[0].coreYNm = 1024;
  entries[0].fp = fakeFp(0xdeadbeefcafebabeull, 0xffffffffffffffffull,
                         0x0123456789abcdefull, -3, 7);
  entries[1].coreXNm = 0;
  entries[1].coreYNm = 0;
  entries[1].fp.empty = true;

  const std::string path = manifestPath(dir);
  writeFingerprintManifest(path, entries);
  std::vector<ManifestEntry> back;
  ASSERT_TRUE(readFingerprintManifest(path, &back));
  ASSERT_EQ(back.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(back[i].coreXNm, entries[i].coreXNm);
    EXPECT_EQ(back[i].coreYNm, entries[i].coreYNm);
    EXPECT_TRUE(back[i].fp == entries[i].fp) << "entry " << i;
  }
}

TEST(Manifest, MissingOrMalformedFileReadsAsInvalid) {
  const std::string dir = freshDir("mosaic_cache_badmanifest");
  fs::create_directories(dir);
  std::vector<ManifestEntry> out{ManifestEntry{}};
  EXPECT_FALSE(readFingerprintManifest(manifestPath(dir), &out));
  EXPECT_TRUE(out.empty());

  std::ofstream(manifestPath(dir)) << "not json at all\n";
  out.assign(1, ManifestEntry{});
  EXPECT_FALSE(readFingerprintManifest(manifestPath(dir), &out));
  EXPECT_TRUE(out.empty());
}

// ----------------------------------------------------- end-to-end chip runs

std::string sharedKernelCache() {
  static const std::string dir =
      ::testing::TempDir() + "mosaic_cache_kernels";
  return dir;
}

ChipConfig cachedChipConfig(const std::string& storeDir) {
  ChipConfig cfg;
  cfg.tiling.tileSizeNm = 512;
  cfg.tiling.haloNm = 128;
  cfg.tiling.pixelNm = 16;
  cfg.method = OpcMethod::kMosaicFast;
  cfg.iterations = 2;
  cfg.backoffMs = 1;
  cfg.kernelCacheDir = sharedKernelCache();
  cfg.patternCacheDir = storeDir;
  return cfg;
}

/// The warm-reuse acceptance run: a second identical chip run must serve
/// every non-empty tile from the store and stitch a bit-identical mask.
TEST(CacheChip, WarmRunIsAllExactHitsAndBitIdentical) {
  const Layout chip = replicateLayout(buildTestcase(1), 2, 2);
  const ChipConfig cfg = cachedChipConfig(freshDir("mosaic_cache_chip"));

  const ChipResult cold = optimizeChip(chip, cfg);
  ASSERT_TRUE(cold.allOk());
  ASSERT_TRUE(cold.cacheEnabled);
  EXPECT_GT(cold.cacheStats.inserts, 0u);

  const ChipResult warm = optimizeChip(chip, cfg);
  ASSERT_TRUE(warm.allOk());

  std::uint64_t nonEmpty = 0;
  for (const TileOutcome& outcome : warm.outcomes) {
    if (outcome.skippedEmpty) continue;
    ++nonEmpty;
    EXPECT_TRUE(outcome.fromCache)
        << "tile (" << outcome.row << "," << outcome.col << ")";
    EXPECT_EQ(outcome.cacheHit, CacheHitKind::kExact);
  }
  ASSERT_GT(nonEmpty, 0u);
  EXPECT_EQ(warm.cacheStats.exactHits, nonEmpty);
  EXPECT_EQ(warm.cacheStats.misses, 0u);
  EXPECT_EQ(warm.cacheStats.hitRate(), 1.0);

  const BitGrid& a = cold.stitched.maskBinary;
  const BitGrid& b = warm.stitched.maskBinary;
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << "stitched masks diverge at " << i;
  }
}

/// The ECO acceptance run: after editing one rect, an --eco-base run must
/// re-optimize only the tiles whose windows the edit touches; every other
/// non-empty tile comes straight from the base run's store.
TEST(CacheChip, EcoRunReoptimizesOnlyChangedTiles) {
  const Layout base = replicateLayout(buildTestcase(1), 2, 2);
  const std::string storeDir = freshDir("mosaic_cache_eco");
  const ChipConfig baseCfg = cachedChipConfig(storeDir);
  const ChipResult baseRun = optimizeChip(base, baseCfg);
  ASSERT_TRUE(baseRun.allOk());

  // The revision: nudge one rect by two pixels (stay inside the chip).
  Layout revised = base;
  ASSERT_FALSE(revised.rects.empty());
  std::size_t edited = revised.rects.size();
  for (std::size_t i = 0; i < revised.rects.size(); ++i) {
    if (revised.rects[i].x1 + 32 <= revised.sizeNm) {
      edited = i;
      break;
    }
  }
  ASSERT_LT(edited, revised.rects.size());
  revised.rects[edited].x0 += 32;
  revised.rects[edited].x1 += 32;

  ChipConfig ecoCfg = cachedChipConfig("");
  ecoCfg.ecoBaseDir = storeDir;
  const ChipResult eco = optimizeChip(revised, ecoCfg);
  ASSERT_TRUE(eco.allOk());
  ASSERT_TRUE(eco.eco.active);
  EXPECT_TRUE(eco.eco.baseValid);
  EXPECT_EQ(eco.eco.tilesTotal, eco.partition.tileCount());
  EXPECT_EQ(eco.eco.tilesChanged + eco.eco.tilesUnchanged,
            eco.eco.tilesTotal);
  EXPECT_GT(eco.eco.tilesChanged, 0);
  EXPECT_LT(eco.eco.tilesChanged, eco.eco.tilesTotal)
      << "a 2-pixel edit must not invalidate the whole chip";

  const std::set<int> changed(eco.eco.changedTiles.begin(),
                              eco.eco.changedTiles.end());
  std::uint64_t unchangedNonEmpty = 0;
  std::uint64_t changedNonEmpty = 0;
  for (std::size_t i = 0; i < eco.outcomes.size(); ++i) {
    const TileOutcome& outcome = eco.outcomes[i];
    if (outcome.skippedEmpty) continue;
    if (changed.count(static_cast<int>(i)) != 0) {
      ++changedNonEmpty;
      EXPECT_FALSE(outcome.fromCache)
          << "changed tile (" << outcome.row << "," << outcome.col
          << ") must re-optimize";
    } else {
      ++unchangedNonEmpty;
      EXPECT_TRUE(outcome.fromCache)
          << "unchanged tile (" << outcome.row << "," << outcome.col
          << ") must come from the base store";
      EXPECT_EQ(outcome.cacheHit, CacheHitKind::kExact);
    }
  }
  // The miss/warm-start counters are the audit trail: exactly the changed
  // non-empty tiles re-optimized, everything else exact-hit.
  EXPECT_EQ(eco.cacheStats.exactHits, unchangedNonEmpty);
  EXPECT_EQ(eco.cacheStats.misses + eco.cacheStats.nearMissHits +
                eco.cacheStats.translatedHits,
            changedNonEmpty);
}

}  // namespace
}  // namespace mosaic
