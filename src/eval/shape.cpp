#include "eval/shape.hpp"

#include <vector>

#include "geometry/bitmap_ops.hpp"
#include "support/error.hpp"

namespace mosaic {

ShapeResult analyzeShape(const BitGrid& printed, const BitGrid& target) {
  MOSAIC_CHECK(printed.sameShape(target), "printed/target shape mismatch");
  ShapeResult result;
  result.holes = countHoles(printed);

  int targetCount = 0;
  const Grid<int> targetLabels =
      labelComponents(target, /*eightConnected=*/false, &targetCount);
  int printedCount = 0;
  const Grid<int> printedLabels =
      labelComponents(printed, /*eightConnected=*/false, &printedCount);

  std::vector<bool> targetHit(static_cast<std::size_t>(targetCount) + 1,
                              false);
  std::vector<bool> printedHit(static_cast<std::size_t>(printedCount) + 1,
                               false);
  for (int r = 0; r < target.rows(); ++r) {
    for (int c = 0; c < target.cols(); ++c) {
      const int tl = targetLabels(r, c);
      const int pl = printedLabels(r, c);
      if (tl && pl) {
        targetHit[static_cast<std::size_t>(tl)] = true;
        printedHit[static_cast<std::size_t>(pl)] = true;
      }
    }
  }
  for (int label = 1; label <= targetCount; ++label) {
    if (!targetHit[static_cast<std::size_t>(label)]) ++result.missingFeatures;
  }
  for (int label = 1; label <= printedCount; ++label) {
    if (!printedHit[static_cast<std::size_t>(label)]) ++result.extraFeatures;
  }
  return result;
}

}  // namespace mosaic
