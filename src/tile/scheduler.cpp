#include "tile/scheduler.hpp"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "geometry/raster.hpp"
#include "support/failpoint.hpp"
#include "support/log.hpp"
#include "support/parallel.hpp"
#include "support/telemetry/metrics.hpp"
#include "support/telemetry/runlog.hpp"
#include "support/telemetry/trace.hpp"
#include "support/timer.hpp"

namespace mosaic {
namespace {

std::string tileCheckpointPath(const std::string& dir, const TilePlan& tile) {
  return dir + "/tile_r" + std::to_string(tile.row) + "_c" +
         std::to_string(tile.col) + ".ckpt";
}

std::string tileScope(const TilePlan& tile) {
  return "tile_r" + std::to_string(tile.row) + "_c" +
         std::to_string(tile.col);
}

/// One JSONL record per finished tile (schema: docs/observability.md).
void emitTileRecord(telemetry::RunLog* runLog, const TileOutcome& outcome) {
  if (!runLog) return;
  telemetry::JsonObject obj;
  obj.set("type", "tile");
  obj.set("row", outcome.row);
  obj.set("col", outcome.col);
  obj.set("status", outcome.skippedEmpty ? "empty"
                    : outcome.ok         ? "ok"
                                         : "fallback");
  obj.set("attempts", outcome.attempts);
  obj.set("iterations", outcome.iterations);
  obj.set("recoveries", outcome.recoveries);
  obj.set("non_finite", outcome.nonFiniteEvents);
  obj.set("wall_ms", outcome.seconds * 1000.0);
  if (!outcome.error.empty()) obj.set("error", outcome.error);
  runLog->write(obj);
}

/// Chip-level summary record carrying the seam statistics — seam quality
/// is a property of the stitched whole, so it cannot go on tile records.
void emitChipRecord(telemetry::RunLog* runLog, const ChipResult& result) {
  if (!runLog) return;
  const SeamReport& seam = result.stitched.report;
  telemetry::JsonObject obj;
  obj.set("type", "chip");
  obj.set("tiles", static_cast<long long>(result.outcomes.size()));
  obj.set("succeeded", result.succeeded);
  obj.set("failed", result.failed);
  obj.set("seam_overlap_px", seam.overlapPixels);
  obj.set("seam_disagree_px", seam.disagreeingPixels);
  obj.set("seam_disagree_frac", seam.disagreementFraction);
  obj.set("seam_core_mismatch_px", seam.coreMismatchPixels);
  obj.set("seam_non_finite_px", seam.nonFinitePixels);
  obj.set("wall_s", result.wallSeconds);
  runLog->write(obj);
}

}  // namespace

ChipResult optimizeChip(const Layout& chip, const ChipConfig& cfg) {
  MOSAIC_CHECK(cfg.retries >= 0, "chip retries must be >= 0");
  MOSAIC_CHECK(cfg.backoffMs >= 0, "chip backoff must be >= 0");
  WallTimer wallTimer;

  ChipResult result;
  result.partition = partitionChip(chip, cfg.tiling, cfg.optics);
  const ChipPartition& part = result.partition;
  result.chipTarget = rasterize(chip, part.pixelNm);

  // One simulator, sized to the shared tile window, for every worker.
  // Const use is thread-safe (see litho/simulator.hpp); kernels for the
  // corners the optimizer touches are pre-warmed here so the expensive
  // eigendecompositions run once, not once per worker.
  OpticsConfig windowOptics = cfg.optics;
  windowOptics.clipSizeNm = part.windowNm;
  windowOptics.pixelNm = part.pixelNm;
  LithoSimulator sim(windowOptics);
  if (!cfg.kernelCacheDir.empty()) {
    std::filesystem::create_directories(cfg.kernelCacheDir);
    sim.setKernelCacheDir(cfg.kernelCacheDir);
  }
  if (!cfg.checkpointDir.empty()) {
    std::filesystem::create_directories(cfg.checkpointDir);
  }
  IltConfig baseConfig = defaultIltConfig(cfg.method, part.pixelNm);
  if (cfg.iterations > 0) baseConfig.maxIterations = cfg.iterations;
  baseConfig.deadlineSeconds = cfg.tileDeadlineSeconds;
  {
    std::vector<double> focuses{nominalCorner().focusNm};
    for (const ProcessCorner& corner : baseConfig.pvbCorners) {
      focuses.push_back(corner.focusNm);
    }
    sim.warmKernels(focuses);
  }

  const std::size_t tileCount = part.tiles.size();
  std::vector<RealGrid> tileMasks(tileCount);
  result.outcomes.assign(tileCount, TileOutcome{});

  parallelFor(0, tileCount, [&](std::size_t i) {
    const TilePlan& tile = part.tiles[i];
    TileOutcome& outcome = result.outcomes[i];
    outcome.index = tile.index;
    outcome.row = tile.row;
    outcome.col = tile.col;
    WallTimer tileTimer;

    const BitGrid target = rasterize(tile.window, part.pixelNm);
    if (tile.empty) {
      // Nothing to print in this window: the optimal mask is background.
      tileMasks[i] = RealGrid(part.windowGrid(), part.windowGrid(),
                              baseConfig.maskLow);
      outcome.ok = true;
      outcome.skippedEmpty = true;
      outcome.seconds = tileTimer.seconds();
      emitTileRecord(cfg.runLog, outcome);
      return;
    }

    // Cooperative interruption: a tile that has not started when the
    // token fires falls back to the uncorrected pattern immediately so
    // the chip still stitches; a resumed run re-optimizes it.
    if (cfg.cancel != nullptr && cfg.cancel->stopRequested()) {
      outcome.error = "canceled before start";
      outcome.seconds = tileTimer.seconds();
      tileMasks[i] = toReal(target);
      emitTileRecord(cfg.runLog, outcome);
      return;
    }

    MOSAIC_SPAN("tile.optimize");
    bool allowResume = cfg.resume;
    for (int attempt = 1; attempt <= cfg.retries + 1; ++attempt) {
      outcome.attempts = attempt;
      try {
        // Per-tile fault isolation (same contract as the batch runner):
        // anything thrown below lands here, and only this tile retries.
        MOSAIC_FAILPOINT("tile.optimize");
        OptimizeOptions options;
        options.runLog = cfg.runLog;
        options.runLogScope = tileScope(tile);
        options.cancel = cfg.cancel;
        if (!cfg.checkpointDir.empty()) {
          const std::string path =
              tileCheckpointPath(cfg.checkpointDir, tile);
          options.checkpointPath = path;
          options.checkpointEvery = cfg.checkpointEvery;
          if (allowResume && std::ifstream(path).good()) {
            options.resumePath = path;
          }
        }
        const OpcResult res =
            runOpc(sim, target, cfg.method, &baseConfig, {}, {}, options);
        if (res.stopReason == StopReason::kCanceled) {
          // Interrupted mid-tile: the optimizer already checkpointed, so
          // ship best-so-far and let a resumed run finish the job.
          outcome.error = "canceled mid-optimization (checkpointed)";
          tileMasks[i] = res.maskTwoLevel;
          outcome.iterations = res.iterations;
          break;
        }
        tileMasks[i] = res.maskTwoLevel;
        outcome.iterations = res.iterations;
        outcome.nonFiniteEvents = res.nonFiniteEvents;
        outcome.recoveries = res.recoveries;
        outcome.ok = true;
        outcome.error.clear();
        break;
      } catch (const CheckpointError& e) {
        // A torn/garbage tile checkpoint must not burn the retry budget:
        // drop the resume and restart this tile from scratch.
        outcome.error = e.what();
        allowResume = false;
        LOG_WARN("tile (" << tile.row << "," << tile.col
                          << ") checkpoint unusable, restarting fresh: "
                          << e.what());
        --attempt;  // corrupt-resume detection is not an optimization try
      } catch (const std::exception& e) {
        outcome.error = e.what();
        LOG_WARN("tile (" << tile.row << "," << tile.col << ") attempt "
                          << attempt << " failed: " << e.what());
        if (attempt <= cfg.retries) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(cfg.backoffMs * attempt));
        }
      }
    }
    if (!outcome.ok) {
      // Last resort: ship the uncorrected pattern for this window so the
      // chip still stitches. The seam report and the outcome row make the
      // degradation visible; the caller decides whether to re-run.
      tileMasks[i] = toReal(target);
      telemetry::metrics().counter("tile.fallbacks").add();
    }
    outcome.seconds = tileTimer.seconds();
    emitTileRecord(cfg.runLog, outcome);
  });

  for (const TileOutcome& outcome : result.outcomes) {
    if (outcome.ok) {
      ++result.succeeded;
    } else {
      ++result.failed;
    }
  }
  result.interrupted = cfg.cancel != nullptr && cfg.cancel->stopRequested();

  const double threshold = 0.5 * (baseConfig.maskLow + baseConfig.maskHigh);
  result.stitched = stitchTiles(part, tileMasks, threshold);
  result.wallSeconds = wallTimer.seconds();
  emitChipRecord(cfg.runLog, result);
  return result;
}

}  // namespace mosaic
