#pragma once
/// \file multires.hpp
/// Coarse-to-fine (multiresolution) ILT: run most descent iterations on a
/// coarser raster (each iteration is factor^2 cheaper), upsample the
/// continuous mask and polish on the fine grid. A standard acceleration
/// in production ILT; provided as an extension with its own ablation
/// (bench/ablation_multires).

#include "litho/simulator.hpp"
#include "opc/mosaic.hpp"

namespace mosaic {

struct MultiresConfig {
  int coarseIterations = 14;  ///< descent budget on the coarse grid
  int fineIterations = 6;     ///< polish budget on the fine grid
};

/// Run `method` coarse-to-fine. `coarseSim` and `fineSim` must share the
/// optical configuration except for the pixel pitch; the pitch ratio
/// defines the resampling factor (an integer > 1). `fineTarget` is the
/// target raster on the fine grid.
OpcResult runOpcMultires(const LithoSimulator& coarseSim,
                         const LithoSimulator& fineSim,
                         const BitGrid& fineTarget, OpcMethod method,
                         const MultiresConfig& config = {},
                         const IltConfig* fineOverride = nullptr,
                         const SrafConfig& sraf = {});

}  // namespace mosaic
