file(REMOVE_RECURSE
  "CMakeFiles/fig3_epe_samples.dir/fig3_epe_samples.cpp.o"
  "CMakeFiles/fig3_epe_samples.dir/fig3_epe_samples.cpp.o.d"
  "fig3_epe_samples"
  "fig3_epe_samples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_epe_samples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
