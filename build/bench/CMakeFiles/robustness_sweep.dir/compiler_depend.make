# Empty compiler generated dependencies file for robustness_sweep.
# This may be replaced when dependencies are built.
