#pragma once
/// \file timer.hpp
/// Wall-clock timing utilities used by the optimizer telemetry and the
/// runtime tables (paper Table 3).

#include <chrono>

namespace mosaic {

/// Simple wall-clock stopwatch. Starts on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last reset().
  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mosaic
