#include "tile/tiling.hpp"

#include <algorithm>
#include <cmath>

#include "support/telemetry/trace.hpp"

namespace mosaic {
namespace {

/// Smallest power of two >= n.
int nextPowerOfTwo(int n) {
  int p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

int opticalInteractionRadiusNm(const OpticsConfig& optics) {
  MOSAIC_CHECK(optics.na > 0 && optics.wavelengthNm > 0,
               "optics must have positive NA and wavelength");
  return static_cast<int>(std::ceil(optics.wavelengthNm / optics.na));
}

int defaultHaloNm(const OpticsConfig& optics, int pixelNm) {
  MOSAIC_CHECK(pixelNm > 0, "pixel size must be positive");
  const int radius = 2 * opticalInteractionRadiusNm(optics);
  return ((radius + pixelNm - 1) / pixelNm) * pixelNm;  // round up to pixel
}

ChipPartition partitionChip(const Layout& chip, const TilingConfig& cfg,
                            const OpticsConfig& optics) {
  MOSAIC_SPAN("tile.partition");
  cfg.validate();
  MOSAIC_CHECK(chip.sizeNm > 0, "chip layout has no size");
  MOSAIC_CHECK(chip.sizeNm % cfg.pixelNm == 0,
               "pixel " << cfg.pixelNm << " nm does not divide chip "
                        << chip.sizeNm << " nm");

  ChipPartition part;
  part.chipName = chip.name;
  part.chipSizeNm = chip.sizeNm;
  part.pixelNm = cfg.pixelNm;
  // A tile larger than the chip degenerates to one whole-chip core.
  part.tileSizeNm = std::min(cfg.tileSizeNm, chip.sizeNm);

  const int requestedHalo =
      cfg.haloNm >= 0 ? cfg.haloNm : defaultHaloNm(optics, cfg.pixelNm);
  // The optimizer needs a power-of-two raster. Round the window up to the
  // next power-of-two grid and fold the slack into the halo, so the
  // effective halo is always >= the requested one. The core spans an even
  // pixel count (TilingConfig::validate) and power-of-two grids are even,
  // so the slack always splits into two equal sides.
  const int corePx = part.tileSizeNm / cfg.pixelNm;
  const int requestedHaloPx = (requestedHalo + cfg.pixelNm - 1) / cfg.pixelNm;
  const int windowPx = nextPowerOfTwo(corePx + 2 * requestedHaloPx);
  MOSAIC_CHECK((windowPx - corePx) % 2 == 0,
               "internal: window/core pixel parity mismatch");
  const int haloPx = (windowPx - corePx) / 2;
  part.haloNm = haloPx * cfg.pixelNm;
  part.windowNm = windowPx * cfg.pixelNm;
  const int radiusPx =
      (opticalInteractionRadiusNm(optics) + cfg.pixelNm - 1) / cfg.pixelNm;
  part.blendNm = std::max(1, std::min(haloPx, radiusPx)) * cfg.pixelNm;

  part.tileCols = (chip.sizeNm + part.tileSizeNm - 1) / part.tileSizeNm;
  part.tileRows = part.tileCols;  // square chip, square tiling

  part.tiles.reserve(static_cast<std::size_t>(part.tileRows) * part.tileCols);
  for (int row = 0; row < part.tileRows; ++row) {
    for (int col = 0; col < part.tileCols; ++col) {
      TilePlan tile;
      tile.index = row * part.tileCols + col;
      tile.row = row;
      tile.col = col;
      // Core: clamped to the chip so edge cores absorb the remainder.
      tile.coreNm.x0 = col * part.tileSizeNm;
      tile.coreNm.y0 = row * part.tileSizeNm;
      tile.coreNm.x1 = std::min(tile.coreNm.x0 + part.tileSizeNm,
                                chip.sizeNm);
      tile.coreNm.y1 = std::min(tile.coreNm.y0 + part.tileSizeNm,
                                chip.sizeNm);
      // Window: fixed size for every tile (shared FFT shape), positioned
      // so the nominal core is centered; it may overhang the chip on any
      // side — the overhang is simply empty pattern.
      tile.windowNm.x0 = col * part.tileSizeNm - part.haloNm;
      tile.windowNm.y0 = row * part.tileSizeNm - part.haloNm;
      tile.windowNm.x1 = tile.windowNm.x0 + part.windowNm;
      tile.windowNm.y1 = tile.windowNm.y0 + part.windowNm;
      tile.window = clipLayout(chip, tile.windowNm,
                               chip.name + "_t" + std::to_string(tile.row) +
                                   "_" + std::to_string(tile.col));
      tile.empty = tile.window.rects.empty();
      part.tiles.push_back(std::move(tile));
    }
  }
  return part;
}

}  // namespace mosaic
