#include "suite/testcases.hpp"

#include <algorithm>
#include <cstdint>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace mosaic {
namespace {

constexpr int kClip = 1024;

Layout makeLayout(const std::string& name) {
  Layout layout;
  layout.name = name;
  layout.sizeNm = kClip;
  return layout;
}

/// B1: isolated horizontal line -- the simplest printability test; line-end
/// pullback dominates the EPE count.
Layout buildB1() {
  Layout l = makeLayout("B1");
  l.addRect(224, 480, 800, 544);  // 576 x 64 line
  return l;
}

/// B2: dense vertical line/space array (5 lines, 64 nm CD, 136 nm pitch).
Layout buildB2() {
  Layout l = makeLayout("B2");
  for (int i = 0; i < 5; ++i) {
    const int x0 = 240 + i * 136;
    l.addRect(x0, 232, x0 + 64, 792);
  }
  return l;
}

/// B3: contact/island array (3 x 3 squares of 72 nm at 200 nm pitch) --
/// corner rounding stress.
Layout buildB3() {
  Layout l = makeLayout("B3");
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      const int x0 = 280 + j * 200;
      const int y0 = 280 + i * 200;
      l.addRect(x0, y0, x0 + 72, y0 + 72);
    }
  }
  return l;
}

/// B4: T-shape with a parallel bar (the paper's Fig. 5 shows B4 as a
/// multi-branch shape).
Layout buildB4() {
  Layout l = makeLayout("B4");
  l.addRect(256, 608, 768, 672);  // top horizontal bar of the T
  l.addRect(480, 320, 544, 608);  // stem
  l.addRect(256, 416, 392, 480);  // left neighbor bar
  l.addRect(632, 416, 768, 480);  // right neighbor bar
  return l;
}

/// B5: comb -- horizontal spine with four vertical teeth, a classic OPC
/// stress shape (dense line ends adjacent to a long edge).
Layout buildB5() {
  Layout l = makeLayout("B5");
  l.addRect(240, 272, 784, 336);  // spine
  for (int i = 0; i < 4; ++i) {
    const int x0 = 272 + i * 128;
    l.addRect(x0, 336, x0 + 64, 704);  // teeth (abut the spine)
  }
  return l;
}

/// B6: irregular Manhattan composition: staircase plus island plus L.
Layout buildB6() {
  Layout l = makeLayout("B6");
  // Staircase of three abutting rectangles.
  l.addRect(240, 560, 472, 624);
  l.addRect(408, 624, 472, 768);
  l.addRect(472, 704, 696, 768);
  // L-shape lower right.
  l.addRect(568, 304, 632, 560);
  l.addRect(632, 304, 792, 368);
  // Isolated island lower left.
  l.addRect(264, 336, 368, 440);
  return l;
}

/// B7: line-end stress -- collinear line pairs with sub-100 nm tip-to-tip
/// gaps at two pitches, plus an orthogonal line closing one gap side.
Layout buildB7() {
  Layout l = makeLayout("B7");
  // Pair 1: 88 nm gap.
  l.addRect(232, 632, 464, 696);
  l.addRect(552, 632, 792, 696);
  // Pair 2: 112 nm gap, closer to the orthogonal line.
  l.addRect(232, 456, 456, 520);
  l.addRect(568, 456, 792, 520);
  // Orthogonal vertical line below the gaps.
  l.addRect(480, 248, 544, 400);
  return l;
}

/// B8: U-shape wrapped around an island -- tests inner corner fidelity and
/// bridging between close parallel edges.
Layout buildB8() {
  Layout l = makeLayout("B8");
  l.addRect(288, 320, 352, 704);  // left arm
  l.addRect(672, 320, 736, 704);  // right arm
  l.addRect(352, 320, 672, 384);  // bottom
  l.addRect(456, 496, 568, 608);  // island inside the U
  return l;
}

/// B9: mixed critical dimensions: a 48 nm line (most aggressive CD), a
/// 96 nm bar and a jogged route.
Layout buildB9() {
  Layout l = makeLayout("B9");
  l.addRect(248, 672, 776, 720);  // 48 nm horizontal line
  l.addRect(248, 456, 520, 552);  // 96 nm wide bar
  // Jog: horizontal, down, horizontal.
  l.addRect(600, 488, 784, 552);
  l.addRect(600, 312, 664, 488);
  l.addRect(296, 280, 536, 344);
  return l;
}

/// B10: dense mixed composition -- the busiest clip: line/space block,
/// contact pair, comb tooth and a long route with two jogs.
Layout buildB10() {
  Layout l = makeLayout("B10");
  // Line/space block upper left (3 lines, 56 CD / 112 pitch).
  for (int i = 0; i < 3; ++i) {
    const int y0 = 600 + i * 112;
    l.addRect(216, y0, 560, y0 + 56);
  }
  // Contact pair upper right.
  l.addRect(672, 688, 752, 768);
  l.addRect(672, 544, 752, 624);
  // Route with jogs across the bottom.
  l.addRect(216, 280, 480, 344);
  l.addRect(416, 344, 480, 472);
  l.addRect(480, 408, 720, 472);
  l.addRect(656, 280, 720, 408);
  // Short stub near the route.
  l.addRect(776, 280, 840, 472);
  return l;
}

}  // namespace

Layout buildTestcase(int index) {
  switch (index) {
    case 1:
      return buildB1();
    case 2:
      return buildB2();
    case 3:
      return buildB3();
    case 4:
      return buildB4();
    case 5:
      return buildB5();
    case 6:
      return buildB6();
    case 7:
      return buildB7();
    case 8:
      return buildB8();
    case 9:
      return buildB9();
    case 10:
      return buildB10();
    default:
      throw InvalidArgument("testcase index must be in [1, 10], got " +
                            std::to_string(index));
  }
}

std::vector<Layout> buildAllTestcases() {
  std::vector<Layout> cases;
  cases.reserve(kTestcaseCount);
  for (int i = 1; i <= kTestcaseCount; ++i) cases.push_back(buildTestcase(i));
  return cases;
}

Layout buildRandomClip(std::uint64_t seed, const RandomClipConfig& cfg) {
  MOSAIC_CHECK(cfg.featureCount >= 1, "need at least one feature");
  MOSAIC_CHECK(cfg.minCdNm >= cfg.gridNm && cfg.maxCdNm >= cfg.minCdNm,
               "CD range invalid");
  MOSAIC_CHECK(cfg.minLengthNm >= cfg.minCdNm &&
                   cfg.maxLengthNm >= cfg.minLengthNm,
               "length range invalid");
  Rng rng(seed);
  Layout layout = makeLayout("R" + std::to_string(seed));

  auto snap = [&](int v) { return (v / cfg.gridNm) * cfg.gridNm; };
  auto randomIn = [&](int lo, int hi) {
    return snap(lo + static_cast<int>(rng.below(
                         static_cast<std::uint64_t>(hi - lo + 1))));
  };

  // Spacing check against already placed rects (Chebyshev expansion).
  // `skipLast` exempts the most recent rect so an L-arm may abut its own
  // bar while still keeping distance from everything else.
  auto farEnough = [&](const RectNm& r, bool skipLast = false) {
    const std::size_t count =
        layout.rects.size() - (skipLast && !layout.rects.empty() ? 1 : 0);
    for (std::size_t i = 0; i < count; ++i) {
      const RectNm& placed = layout.rects[i];
      const RectNm inflated{placed.x0 - cfg.minSpacingNm,
                            placed.y0 - cfg.minSpacingNm,
                            placed.x1 + cfg.minSpacingNm,
                            placed.y1 + cfg.minSpacingNm};
      if (inflated.intersects(r)) return false;
    }
    return true;
  };

  const int lo = cfg.marginNm;
  const int hi = kClip - cfg.marginNm;
  int placed = 0;
  int attempts = 0;
  while (placed < cfg.featureCount && attempts < cfg.featureCount * 40) {
    ++attempts;
    const int kind = static_cast<int>(rng.below(4));
    const int cd = randomIn(cfg.minCdNm, cfg.maxCdNm);
    const int len = randomIn(cfg.minLengthNm, cfg.maxLengthNm);
    const int w = (kind == 0) ? len : cd;   // 0: horizontal bar
    const int h = (kind == 0) ? cd : (kind == 1 ? len : cd + len / 2);
    const int width = (kind == 2) ? cd + len / 2 : w;   // 2: square-ish pad
    const int height = (kind == 1) ? h : (kind == 2 ? cd + len / 2 : h);
    const int spanX = std::min(width, hi - lo - cfg.gridNm);
    const int spanY = std::min(height, hi - lo - cfg.gridNm);
    const int x0 = randomIn(lo, hi - spanX);
    const int y0 = randomIn(lo, hi - spanY);
    RectNm rect{x0, y0, snap(x0 + spanX), snap(y0 + spanY)};
    if (!rect.valid() || !farEnough(rect)) continue;
    layout.addRect(rect.x0, rect.y0, rect.x1, rect.y1);
    ++placed;
    // L-shapes: append a perpendicular arm abutting the bar (same
    // component, no spacing requirement against its own body).
    if (kind == 3 && rect.width() >= 2 * cfg.minCdNm) {
      const int armW = snap(std::max(cfg.minCdNm, cd));
      const int armH = snap(std::min(len, hi - rect.y1));
      RectNm arm{rect.x1 - armW, rect.y1, rect.x1, rect.y1 + armH};
      if (arm.valid() && arm.y1 <= hi && farEnough(arm, /*skipLast=*/true)) {
        layout.addRect(arm.x0, arm.y0, arm.x1, arm.y1);
      }
    }
  }
  MOSAIC_CHECK(!layout.rects.empty(),
               "random clip generation placed no features (seed "
                   << seed << ")");
  return layout;
}

Layout buildTestcaseByName(const std::string& name) {
  MOSAIC_CHECK(name.size() >= 2 && (name[0] == 'B' || name[0] == 'b'),
               "testcase names look like B1..B10, got: " << name);
  int index = 0;
  try {
    index = std::stoi(name.substr(1));
  } catch (const std::exception&) {
    throw InvalidArgument("cannot parse testcase name: " + name);
  }
  return buildTestcase(index);
}

}  // namespace mosaic
