/// \file fig6_convergence.cpp
/// Reproduces paper Fig. 6: convergence of the gradient descent with
/// MOSAIC_exact on B4 and B6 -- per-iteration EPE violations, PV band and
/// contest score. The paper's shape: EPE violations fall across
/// iterations while the PV band drifts up (EPE carries the higher
/// objective weight), with the score settling within ~20 iterations.

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "eval/evaluator.hpp"
#include "geometry/raster.hpp"
#include "litho/simulator.hpp"
#include "opc/mask_params.hpp"
#include "opc/mosaic.hpp"
#include "suite/testcases.hpp"
#include "support/cli.hpp"
#include "support/image_io.hpp"
#include "support/log.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace mosaic;
  int pixel = 4;
  int iterations = 20;
  std::string cases = "4,6";
  std::string csvDir;
  std::string logLevel = "warn";

  CliParser cli("fig6_convergence",
                "Reproduce paper Fig. 6 (convergence of MOSAIC_exact)");
  cli.addInt("pixel", &pixel, "pixel size in nm");
  cli.addInt("iters", &iterations, "optimizer iterations (paper: 20)");
  cli.addString("cases", &cases, "comma-separated testcase indices");
  cli.addString("csv", &csvDir, "optional directory for CSV traces");
  cli.addString("log", &logLevel, "log level");
  try {
    if (!cli.parse(argc, argv)) return 0;
    setLogLevel(parseLogLevel(logLevel));

    OpticsConfig optics;
    optics.pixelNm = pixel;
    LithoSimulator sim(optics);

    std::string rest = cases;
    while (!rest.empty()) {
      const auto comma = rest.find(',');
      const int caseIdx = std::stoi(rest.substr(0, comma));
      rest = comma == std::string::npos ? "" : rest.substr(comma + 1);

      const Layout layout = buildTestcase(caseIdx);
      const BitGrid target = rasterize(layout, pixel);

      TextTable table;
      table.setHeader({"iter", "#EPE", "PVB(nm^2)", "score", "objective",
                       "F_epe", "F_pvb", "step"});

      IltConfig cfg = defaultIltConfig(OpcMethod::kMosaicExact, pixel);
      cfg.maxIterations = iterations;
      std::vector<std::vector<double>> trace;
      const OpcResult res = runOpc(
          sim, target, OpcMethod::kMosaicExact, &cfg, SrafConfig{},
          [&](const IterationRecord& rec, const RealGrid& mask) {
            // Contest metrics of the *binarized* current iterate (the
            // paper plots measured EPE/PVB, not the soft objective).
            const CaseEvaluation ev = evaluateMask(
                sim, toReal(MaskTransform::binarize(mask)), target, 0.0);
            table.addRow({TextTable::integer(rec.iteration),
                          TextTable::integer(ev.epeViolations),
                          TextTable::num(ev.pvbandAreaNm2, 0),
                          TextTable::num(ev.score, 0),
                          TextTable::num(rec.objective, 1),
                          TextTable::num(rec.targetTerm, 2),
                          TextTable::num(rec.pvbTerm, 1),
                          TextTable::num(rec.stepSize, 3)});
            trace.push_back({static_cast<double>(rec.iteration),
                             static_cast<double>(ev.epeViolations),
                             ev.pvbandAreaNm2, ev.score, rec.objective});
          });
      (void)res;

      std::printf("=== Fig. 6: convergence of MOSAIC_exact on %s ===\n",
                  layout.name.c_str());
      std::printf("%s\n", table.render().c_str());

      if (!csvDir.empty()) {
        CsvWriter csv(csvDir + "/fig6_" + layout.name + ".csv");
        csv.writeHeader({"iter", "epe", "pvband_nm2", "score", "objective"});
        for (const auto& row : trace) csv.writeRow(row);
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fig6_convergence failed: %s\n", e.what());
    return 1;
  }
}
