#pragma once
/// \file scheduler.hpp
/// Parallel, fault-isolated tile optimization — the middle of the
/// full-chip tiling engine (docs/tiling.md).
///
/// Tiles produced by partitionChip are optimized concurrently on the
/// parallelFor pool. All workers share one immutable LithoSimulator (its
/// const interface is thread-safe; the kernel sets are pre-warmed before
/// fan-out so workers never pay the TCC eigendecomposition). Each tile is
/// individually guarded by the PR-1 fault machinery: failures are caught,
/// retried with backoff, and a tile that exhausts its retries falls back
/// to the uncorrected target pattern so the chip still stitches — one
/// diverging tile must never take the whole chip down. The fail-point
/// site `tile.optimize` lets tests force tile failures deterministically.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cache/store.hpp"
#include "opc/mosaic.hpp"
#include "support/cancel.hpp"
#include "tile/stitch.hpp"
#include "tile/tiling.hpp"

namespace mosaic {

namespace telemetry {
class RunLog;
}

/// Knobs of the full-chip run.
struct ChipConfig {
  TilingConfig tiling;
  OpticsConfig optics;  ///< clipSizeNm/pixelNm are overridden per window
  OpcMethod method = OpcMethod::kMosaicFast;
  int iterations = 0;  ///< optimizer iterations per tile (0 = method default)
  int retries = 1;     ///< retries per tile on failure
  int backoffMs = 50;  ///< retry backoff (multiplied by the attempt number)
  double tileDeadlineSeconds = 0.0;  ///< per-tile wall-clock budget (0 = off)
  /// Directory for per-tile optimizer checkpoints (empty = off). Files are
  /// named tile_r<row>_c<col>_x<coreX>_y<coreY>.ckpt — the core origin is
  /// part of the name so a resume against a re-partitioned chip (different
  /// tile size or halo) can never pick up a checkpoint whose grid index
  /// happens to collide. With `resume`, tiles whose checkpoint exists
  /// continue from it — a killed chip run can be restarted and only
  /// re-pays the unfinished iterations.
  std::string checkpointDir;
  int checkpointEvery = 5;
  bool resume = false;
  /// On-disk kernel cache directory shared by all tiles (empty = off).
  std::string kernelCacheDir;
  /// Pattern-library cache directory (empty = off, docs/caching.md). Tiles
  /// whose fingerprint exact-hits paste the cached mask; translated and
  /// near-miss hits warm-start with `warmIterations`; misses optimize and
  /// insert. A `fingerprints.jsonl` manifest is written alongside for
  /// later ECO runs.
  std::string patternCacheDir;
  /// Byte cap for the pattern store (LRU-evicted above it; 0 = unlimited).
  long long patternCacheMaxBytes = 512ll << 20;
  /// Iteration budget for warm-started tiles. 0 = a quarter of the cold
  /// budget, at least 2.
  int warmIterations = 0;
  /// Cache-aware tile ordering (docs/caching.md): tiles are grouped by
  /// fingerprint equivalence class and one *representative* per class is
  /// optimized first; the remaining members then fan out as cheap
  /// steal-able paste tasks that exact-hit the representative's freshly
  /// inserted solution. On repetitive layouts this turns a cold run into
  /// #classes optimizations plus #tiles - #classes pastes instead of
  /// #tiles optimizations. Only meaningful when a pattern store is
  /// active; ignored otherwise.
  bool cacheAwareOrder = true;
  /// Incremental re-OPC: pattern-store directory of a previous run. The
  /// run uses it as the pattern cache (so unchanged tiles exact-hit) and
  /// diffs the current fingerprints against its manifest into
  /// ChipResult::eco. Overrides patternCacheDir when set.
  std::string ecoBaseDir;
  /// When set, every tile appends per-iteration and per-tile JSONL records
  /// here, plus one chip-level summary record with the seam statistics
  /// (docs/observability.md). Not owned; must outlive the run.
  telemetry::RunLog* runLog = nullptr;
  /// Cooperative stop (Ctrl-C, serve drain): tiles not yet started fall
  /// back to the uncorrected pattern immediately, running tiles stop at
  /// their next optimizer iteration and checkpoint (when checkpointDir is
  /// set), and the chip still stitches so partial work is inspectable.
  /// Restart with `resume` to continue. Not owned; may be nullptr.
  const CancelToken* cancel = nullptr;
  /// Trace context for the whole chip run: every tile task enters this id
  /// (telemetry::TraceScope), so tile spans, run-log records and
  /// flight-recorder events correlate across the worker pool
  /// (docs/observability.md). 0 = no trace context.
  std::uint64_t traceId = 0;
  /// Per-iteration streaming across all tiles: called with the tile's
  /// run-log scope ("tile_r<r>_c<c>") and the iteration record, from the
  /// optimizing worker thread. Must be cheap and non-blocking.
  std::function<void(const std::string& scope, const IterationRecord&)>
      progressSink;
};

/// Outcome of one tile's optimization.
struct TileOutcome {
  int index = 0;
  int row = 0;
  int col = 0;
  bool ok = false;
  bool skippedEmpty = false;  ///< no pattern in the window; trivial mask
  int attempts = 0;
  int iterations = 0;
  int nonFiniteEvents = 0;
  int recoveries = 0;
  double seconds = 0.0;
  std::string error;  ///< last failure message (empty when ok)
  /// What the pattern cache had for this tile (kMiss when caching is off).
  CacheHitKind cacheHit = CacheHitKind::kMiss;
  bool fromCache = false;  ///< mask pasted verbatim from an exact hit
  bool warmStarted = false;  ///< optimized from a cached starting mask
  /// Scheduled in the representatives wave of a cache-aware run (first
  /// tile of its fingerprint equivalence class).
  bool representative = false;
};

/// What an ECO (incremental re-OPC) run learned from the base manifest.
struct EcoReport {
  bool active = false;     ///< ChipConfig::ecoBaseDir was set
  bool baseValid = false;  ///< base manifest found, parsed, and comparable
  int tilesTotal = 0;      ///< non-empty tiles considered
  int tilesChanged = 0;    ///< fingerprint differs from the base (or is new)
  int tilesUnchanged = 0;  ///< identical problem as the base run
  std::vector<int> changedTiles;  ///< indices into ChipPartition::tiles
};

/// A finished full-chip run.
struct ChipResult {
  ChipPartition partition;
  std::vector<TileOutcome> outcomes;  ///< same order as partition.tiles
  StitchResult stitched;
  BitGrid chipTarget;  ///< chip-grid rasterization of the input layout
  double wallSeconds = 0.0;
  int succeeded = 0;  ///< tiles that optimized (or were trivially empty)
  int failed = 0;     ///< tiles that fell back to the uncorrected pattern
  bool interrupted = false;  ///< cfg.cancel fired before the run finished
  bool cacheEnabled = false;        ///< a pattern store served this run
  bool cacheOrdered = false;        ///< representatives-first scheduling ran
  int representatives = 0;          ///< tiles optimized in the first wave
  PatternStoreStats cacheStats;     ///< store counters after the run
  EcoReport eco;                    ///< populated when ecoBaseDir was set

  [[nodiscard]] bool allOk() const { return failed == 0; }
};

/// Partition, optimize concurrently, stitch. The worker count is whatever
/// setParallelism() / the hardware default dictates; call setParallelism
/// first for explicit control.
ChipResult optimizeChip(const Layout& chip, const ChipConfig& cfg);

}  // namespace mosaic
