#pragma once
/// \file tiling.hpp
/// Halo-aware partitioning of a full-chip layout into overlapping tiles —
/// the front half of the full-chip tiling engine (docs/tiling.md).
///
/// The single-clip MOSAIC optimizer works on a power-of-two raster of one
/// square window. To scale to arbitrarily large layouts, the chip is split
/// into a grid of *core* tiles that cover it disjointly; each core is
/// inflated by a *halo* margin so the optical neighborhood seen by the
/// optimizer is complete, and the resulting *window* is what actually gets
/// optimized. Halo regions overlap between neighboring tiles; the stitcher
/// (stitch.hpp) resolves them afterwards.
///
/// Geometry invariants established here:
///  - cores tile [0, chipSizeNm)^2 disjointly (edge cores may be smaller
///    when the chip is not a multiple of the tile size);
///  - every window has the same size, and windowNm / pixelNm is a power of
///    two, so all tiles share one FFT shape and one simulator;
///  - the effective halo is at least the requested one — the window is
///    rounded *up* to the next power-of-two grid and the slack is turned
///    into extra halo, never less context.

#include <string>
#include <vector>

#include "geometry/layout.hpp"
#include "litho/optics.hpp"

namespace mosaic {

/// User-facing knobs of the partitioner.
struct TilingConfig {
  int tileSizeNm = 1024;  ///< core tile edge (the contest clip size)
  /// Requested halo margin in nm. Negative = derive the default from the
  /// optics: 2x the optical interaction radius (see
  /// opticalInteractionRadiusNm). The effective halo is >= this after
  /// power-of-two rounding of the window.
  int haloNm = -1;
  int pixelNm = 4;  ///< raster pitch shared by tiles and the chip grid

  void validate() const {
    MOSAIC_CHECK(tileSizeNm > 0, "tile size must be positive");
    MOSAIC_CHECK(pixelNm > 0, "pixel size must be positive");
    MOSAIC_CHECK(tileSizeNm % pixelNm == 0,
                 "pixel " << pixelNm << " nm does not divide tile size "
                          << tileSizeNm << " nm");
    MOSAIC_CHECK((tileSizeNm / pixelNm) % 2 == 0,
                 "tile size must span an even number of pixels");
  }
};

/// Radius in nm beyond which a mask edit has negligible optical influence,
/// derived from the SOCS kernel support: the pupil is band-limited to
/// NA / lambda, so kernel energy is concentrated within a few coherence
/// lengths lambda / NA of the origin. Returned as ceil(lambda / NA)
/// rounded up — callers size halos as a multiple of this.
int opticalInteractionRadiusNm(const OpticsConfig& optics);

/// The default halo: 2x the optical interaction radius, rounded up to a
/// whole pixel.
int defaultHaloNm(const OpticsConfig& optics, int pixelNm);

/// One tile of the partition.
struct TilePlan {
  int index = 0;  ///< row-major position in the tile grid
  int row = 0;
  int col = 0;
  RectNm coreNm;    ///< chip-coordinate core (disjoint cover of the chip)
  RectNm windowNm;  ///< chip-coordinate optimization window (may overhang)
  Layout window;    ///< chip pattern clipped to windowNm, window-local nm
  bool empty = false;  ///< no pattern anywhere in the window
};

/// A full partition of one chip.
struct ChipPartition {
  std::string chipName;
  int chipSizeNm = 0;
  int pixelNm = 0;
  int tileSizeNm = 0;   ///< requested core edge
  int haloNm = 0;       ///< *effective* halo after power-of-two rounding
  int windowNm = 0;     ///< window edge = tileSizeNm + 2 * haloNm
  /// Width of the stitcher's blend ramp on each side of a core boundary:
  /// one optical interaction radius (capped by the halo). Beyond it a
  /// tile's solution gets zero stitch weight — mask detail deep in a halo
  /// only exists to give the optimizer context, not to be printed.
  int blendNm = 0;
  int tileRows = 0;
  int tileCols = 0;
  std::vector<TilePlan> tiles;  ///< row-major, tileRows * tileCols entries

  [[nodiscard]] int tileCount() const {
    return static_cast<int>(tiles.size());
  }
  /// Side of the full-chip raster (not necessarily a power of two — the
  /// chip grid is only blended/compared on, never FFT'd).
  [[nodiscard]] int chipGrid() const { return chipSizeNm / pixelNm; }
  /// Side of the per-tile raster; always a power of two.
  [[nodiscard]] int windowGrid() const { return windowNm / pixelNm; }
};

/// Split a chip layout into overlapping tiles. The chip size is taken from
/// layout.sizeNm and must be a positive multiple of the pixel size; tile
/// windows are clipped out of the layout via geometry/clipLayout.
/// \param optics used only to derive the default halo when cfg.haloNm < 0.
ChipPartition partitionChip(const Layout& chip, const TilingConfig& cfg,
                            const OpticsConfig& optics = {});

}  // namespace mosaic
