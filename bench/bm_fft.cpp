/// \file bm_fft.cpp
/// Legacy-vs-new FFT engine benchmark (docs/performance.md). Times the
/// 2-D forward+inverse pair on the frozen legacy transforms (the seed
/// implementation: per-stage radix-2 butterflies, per-column
/// gather/scatter) against the rebuilt engine (fused stage pairs,
/// row-vector column butterflies) and its real-input/real-output fast
/// path, across grid sizes and thread counts. Each thread transforms its
/// own grid through the shared plan, which is the tile scheduler's access
/// pattern. Emits BENCH_fft.json; with --min-speedup S it exits nonzero
/// when the new engine is not at least S times faster than legacy at the
/// gate size (enforced at 1.0 -- "never slower" -- by the fft_perf_smoke
/// ctest; the recorded full-run numbers are the >= 2x evidence).

#include <complex>
#include <cstdio>
#include <exception>
#include <string>
#include <thread>
#include <vector>

#include "math/fft.hpp"
#include "math/grid.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace {

using namespace mosaic;

ComplexGrid randomGrid(int n, std::uint64_t seed) {
  Rng rng(seed);
  ComplexGrid g(n, n);
  for (auto& v : g) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  return g;
}

RealGrid randomRealGrid(int n, std::uint64_t seed) {
  Rng rng(seed);
  RealGrid g(n, n);
  for (auto& v : g) v = rng.uniform(0, 1);
  return g;
}

/// Runs `pair` (one forward+inverse round trip on a per-thread grid)
/// `iters` times on each of `threads` concurrent workers and returns the
/// best-of-`reps` wall time of one whole batch, in seconds.
template <typename PairFn>
double timeBatch(int threads, int iters, int reps, const PairFn& pair) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    if (threads <= 1) {
      for (int i = 0; i < iters; ++i) pair(0);
    } else {
      std::vector<std::thread> pool;
      pool.reserve(static_cast<std::size_t>(threads));
      for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
          for (int i = 0; i < iters; ++i) pair(t);
        });
      }
      for (auto& th : pool) th.join();
    }
    const double s = timer.seconds();
    if (r == 0 || s < best) best = s;
  }
  return best;
}

struct Row {
  int size = 0;
  int threads = 0;
  double legacyMs = 0.0;
  double newMs = 0.0;
  double realMs = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  int reps = 3;
  int gateSize = 1024;
  double minSpeedup = -1.0;
  bool smoke = false;
  std::string jsonPath = "BENCH_fft.json";

  CliParser cli("bm_fft",
                "legacy vs rebuilt FFT engine: 2-D forward+inverse pair");
  cli.addInt("reps", &reps, "repetitions per config (minimum is reported)");
  cli.addInt("gate-size", &gateSize, "grid size the --min-speedup gate uses");
  cli.addDouble("min-speedup", &minSpeedup,
                "fail when new is not this many times faster than legacy "
                "at the gate size, single thread (<0 = off)");
  cli.addFlag("smoke", &smoke,
              "gate size only, single thread (the tier-1 perf smoke)");
  cli.addString("json", &jsonPath, "output JSON path");
  try {
    if (!cli.parse(argc, argv)) return 0;
    MOSAIC_CHECK(reps > 0, "reps must be positive");
    MOSAIC_CHECK(Fft2d(gateSize, gateSize).rows() == gateSize,
                 "gate size must be a power of two");

    const std::vector<int> sizes =
        smoke ? std::vector<int>{gateSize}
              : std::vector<int>{256, 512, 1024, 2048};
    const std::vector<int> threadCounts =
        smoke ? std::vector<int>{1} : std::vector<int>{1, 2, 4};

    std::vector<Row> rows;
    double gateLegacyMs = 0.0;
    double gateNewMs = 0.0;

    for (const int n : sizes) {
      const Fft2d& fft = fft2dFor(n, n);
      // Keep each batch around the cost of a few 1024^2 pairs so small
      // sizes are timed over many iterations and large ones stay quick.
      const long long px = static_cast<long long>(n) * n;
      const int iters =
          std::max(1, static_cast<int>((1024LL * 1024 * 2) / px));

      const int maxThreads = threadCounts.back();
      std::vector<ComplexGrid> complexGrids;
      std::vector<RealGrid> realGrids;
      std::vector<ComplexGrid> spectra;
      std::vector<RealGrid> realOut;
      for (int t = 0; t < maxThreads; ++t) {
        complexGrids.push_back(randomGrid(n, 100u + static_cast<unsigned>(t)));
        realGrids.push_back(randomRealGrid(n, 200u + static_cast<unsigned>(t)));
        spectra.emplace_back(n, n);
        realOut.emplace_back(n, n);
      }

      for (const int threads : threadCounts) {
        Row row;
        row.size = n;
        row.threads = threads;
        const double scale = 1000.0 / iters;

        row.legacyMs = scale * timeBatch(threads, iters, reps, [&](int t) {
          auto& g = complexGrids[static_cast<std::size_t>(t)];
          fft.forwardLegacy(g);
          fft.inverseLegacy(g);
        });
        row.newMs = scale * timeBatch(threads, iters, reps, [&](int t) {
          auto& g = complexGrids[static_cast<std::size_t>(t)];
          fft.forward(g);
          fft.inverse(g);
        });
        row.realMs = scale * timeBatch(threads, iters, reps, [&](int t) {
          const std::size_t i = static_cast<std::size_t>(t);
          fft.forwardRealInto(realGrids[i], spectra[i]);
          fft.inverseRealInto(spectra[i], realOut[i]);
        });
        rows.push_back(row);
        if (n == gateSize && threads == 1) {
          gateLegacyMs = row.legacyMs;
          gateNewMs = row.newMs;
        }
        std::printf("size %4d  threads %d  legacy %8.2f ms  new %8.2f ms "
                    "(%.2fx)  real %8.2f ms (%.2fx)\n",
                    n, threads, row.legacyMs, row.newMs,
                    row.legacyMs / row.newMs, row.realMs,
                    row.legacyMs / row.realMs);
        std::fflush(stdout);
      }
    }

    TextTable table;
    table.setHeader({"size", "threads", "legacy ms", "new ms", "speedup",
                     "real ms", "real speedup"});
    for (const Row& row : rows) {
      table.addRow({std::to_string(row.size), std::to_string(row.threads),
                    TextTable::num(row.legacyMs, 2),
                    TextTable::num(row.newMs, 2),
                    TextTable::num(row.legacyMs / row.newMs, 2),
                    TextTable::num(row.realMs, 2),
                    TextTable::num(row.legacyMs / row.realMs, 2)});
    }
    std::printf("\n== bm_fft: forward+inverse pair per thread, best of %d "
                "reps ==\n%s",
                reps, table.render().c_str());

    FILE* json = std::fopen(jsonPath.c_str(), "w");
    MOSAIC_CHECK(json != nullptr, "cannot write " << jsonPath);
    std::fprintf(json, "{\n  \"bench\": \"bm_fft\",\n  \"reps\": %d,\n"
                       "  \"pair\": \"forward+inverse per thread\",\n"
                       "  \"rows\": [\n", reps);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      std::fprintf(json,
                   "    {\"size\": %d, \"threads\": %d, "
                   "\"legacy_ms\": %.3f, \"new_ms\": %.3f, "
                   "\"speedup\": %.3f, \"real_ms\": %.3f, "
                   "\"real_speedup\": %.3f}%s\n",
                   row.size, row.threads, row.legacyMs, row.newMs,
                   row.legacyMs / row.newMs, row.realMs,
                   row.legacyMs / row.realMs,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote %s\n", jsonPath.c_str());

    if (minSpeedup >= 0.0) {
      MOSAIC_CHECK(gateLegacyMs > 0.0,
                   "gate size " << gateSize << " was not measured");
      const double speedup = gateLegacyMs / gateNewMs;
      if (speedup < minSpeedup) {
        std::fprintf(stderr,
                     "bm_fft: new engine speedup %.2fx at %d^2 is below "
                     "the %.2fx gate\n",
                     speedup, gateSize, minSpeedup);
        return 1;
      }
      std::printf("gate: %.2fx >= %.2fx at %d^2, ok\n", speedup, minSpeedup,
                  gateSize);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bm_fft: %s\n", e.what());
    return 1;
  }
  return 0;
}
