#pragma once
/// \file service.hpp
/// JobService — the core of the mosaic_serve daemon, deliberately free of
/// any networking so tests and benches can drive it in-process
/// (docs/serving.md). It owns:
///   - the bounded admission queue (queue.hpp),
///   - a fixed worker pool sharing warm LithoSimulators per pixel size,
///   - per-job cancellation tokens carrying wall-clock deadlines,
///   - retry-with-backoff around each attempt (fail-point site
///     serve.worker), and
///   - the write-ahead job journal plus per-job optimizer checkpoints that
///     make a SIGKILLed daemon resume bit-identically after restart.
///
/// Construction replays the journal found in the work directory and
/// re-enqueues every unfinished job before the first worker starts, so
/// recovery needs no operator action beyond restarting the process.

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/store.hpp"
#include "litho/simulator.hpp"
#include "serve/job.hpp"
#include "serve/journal.hpp"
#include "serve/progress.hpp"
#include "serve/queue.hpp"
#include "support/cancel.hpp"

namespace mosaic {

namespace telemetry {
class RunLog;
}

namespace serve {

struct ServeConfig {
  /// Journal, checkpoints and the port file live here. Required.
  std::string workDir;
  int workers = 2;
  int queueCapacity = 8;
  /// Share one warm LithoSimulator per pixel size across jobs (the serve
  /// value proposition: kernels are computed once, not per job). Off =
  /// every job builds a fresh simulator — the cold baseline bm_serve
  /// measures against.
  bool reuseSimulators = true;
  int backoffMs = 25;  ///< retry backoff (multiplied by the attempt number)
  /// Optional per-iteration/job observability log (separate file from the
  /// journal — the journal is a recovery record, not telemetry). Not
  /// owned; must outlive the service.
  telemetry::RunLog* runLog = nullptr;
  /// Pattern-library cache directory (empty = off, docs/caching.md): jobs
  /// whose clip fingerprint exact-hits return the cached mask without
  /// optimizing; near hits warm-start; solved masks are inserted.
  std::string patternCacheDir;
  long long patternCacheMaxBytes = 512ll << 20;  ///< LRU cap (0 = unlimited)
};

enum class SubmitStatus { kAccepted, kQueueFull, kShuttingDown, kBadRequest };

struct SubmitResult {
  SubmitStatus status = SubmitStatus::kAccepted;
  std::string id;       ///< assigned job id (accepted only)
  std::string message;  ///< rejection detail
};

/// How a drain treats running jobs: finish them, or checkpoint + stop so a
/// restarted daemon resumes them (the SIGINT/SIGTERM path).
enum class DrainMode { kFinish, kCheckpoint };

/// Aggregate counters for the stats op.
struct ServiceStats {
  int queued = 0;
  int running = 0;
  int done = 0;
  int failed = 0;
  int canceled = 0;
  int expired = 0;
  long long submitted = 0;
  long long rejected = 0;
  long long retries = 0;
  int recoveredJobs = 0;  ///< re-enqueued by journal replay at startup
  int workers = 0;
  std::size_t queueCapacity = 0;
  bool cacheEnabled = false;  ///< a pattern store is serving this process
  PatternStoreStats cache;    ///< pattern-store counters (when enabled)
};

class JobService {
 public:
  /// Replays the journal in cfg.workDir, re-enqueues unfinished jobs, and
  /// starts the worker pool. Throws on an unusable work directory.
  explicit JobService(const ServeConfig& cfg);

  /// Equivalent to drain(DrainMode::kCheckpoint) if still running.
  ~JobService();

  JobService(const JobService&) = delete;
  JobService& operator=(const JobService&) = delete;

  /// Admission control: validates the spec, journals it, and enqueues.
  /// Never blocks on running jobs — a queue_full rejection returns
  /// immediately (the <100 ms admission contract).
  SubmitResult submit(JobSpec spec);

  /// Cancel a queued or running job. Queued jobs terminate immediately;
  /// running jobs stop at their next optimizer iteration. False with a
  /// message when the job is unknown or already terminal.
  bool cancel(const std::string& id, std::string* message);

  /// Snapshot one job; false when the id is unknown.
  bool snapshot(const std::string& id, JobSnapshot* out) const;

  [[nodiscard]] std::vector<JobSnapshot> snapshots() const;

  [[nodiscard]] ServiceStats stats() const;

  /// Stop admissions, then either finish the backlog (kFinish) or stop
  /// every running job at its next iteration with a checkpoint
  /// (kCheckpoint; queued + interrupted jobs stay unterminated in the
  /// journal and resume on restart). Joins the workers. Idempotent.
  void drain(DrainMode mode);

  [[nodiscard]] bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] int recoveredJobs() const { return recoveredJobs_; }
  [[nodiscard]] const std::string& workDir() const { return cfg_.workDir; }

  /// Streaming per-iteration progress (the watch op). Workers publish one
  /// event per optimizer iteration plus a terminal event per job.
  [[nodiscard]] ProgressBus& progress() { return progress_; }

 private:
  /// One job's mutable state. Lives behind a unique_ptr so the token's
  /// address is stable for the optimizer polling it from a worker thread.
  struct Job {
    JobSpec spec;
    JobState state = JobState::kQueued;
    CancelToken token;
    bool userCanceled = false;   ///< cancel op (vs a checkpoint drain)
    bool resumable = false;      ///< checkpoint file is expected to exist
    int attempts = 0;
    int iterationsDone = 0;
    double objective = 0.0;
    double wallSeconds = 0.0;
    std::string maskHash;
    std::string error;
    bool recovered = false;
    /// Trace id assigned at admission (journaled, so a recovered job keeps
    /// its id and the post-restart records still correlate).
    std::uint64_t traceId = 0;
    /// Live worker phase for /jobs and the status op.
    std::string phase = "queued";
  };

  void recoverFromJournal();
  void workerLoop();
  void runJob(Job& job);
  /// Warm-pool lookup (reuseSimulators) or fresh construction.
  const LithoSimulator& simulatorFor(int pixelNm,
                                     std::unique_ptr<LithoSimulator>* cold);
  [[nodiscard]] std::string checkpointPath(const std::string& id) const;
  void journalTerminal(const Job& job);
  [[nodiscard]] JobSnapshot snapshotLocked(const Job& job) const;

  ServeConfig cfg_;
  BoundedJobQueue queue_;
  std::unique_ptr<JobJournal> journal_;

  mutable std::mutex mutex_;  ///< guards jobs_ and each Job's fields
  std::map<std::string, std::unique_ptr<Job>> jobs_;
  std::atomic<long long> nextId_{1};
  std::atomic<long long> submitted_{0};
  std::atomic<long long> rejected_{0};
  std::atomic<long long> retries_{0};
  int recoveredJobs_ = 0;

  std::atomic<bool> draining_{false};
  std::atomic<bool> drainCheckpoint_{false};
  std::atomic<bool> stopped_{false};

  std::mutex simMutex_;
  std::map<int, std::unique_ptr<LithoSimulator>> warmSims_;

  /// Pattern-library store shared by all workers (null = caching off).
  std::unique_ptr<PatternStore> patternStore_;

  ProgressBus progress_;

  std::vector<std::thread> workers_;
};

}  // namespace serve
}  // namespace mosaic
