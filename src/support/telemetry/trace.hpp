#pragma once
/// \file trace.hpp
/// Scoped trace spans with Chrome trace_event export
/// (docs/observability.md).
///
/// MOSAIC_SPAN("fft.forward") at the top of a scope does two things when
/// the scope exits:
///   1. records the elapsed time into the latency histogram of the same
///      name (always on -- a few relaxed atomics), and
///   2. if tracing is enabled (setTraceEnabled), pushes a completed-span
///      event into the calling thread's ring buffer.
/// The recorded events export as Chrome trace_event JSON that loads in
/// chrome://tracing and https://ui.perfetto.dev.
///
/// Cost model: with tracing disabled a span is one steady_clock read on
/// entry and one read + histogram update + relaxed flag check on exit
/// (tens of nanoseconds -- see bench/bm_telemetry). Building with
/// -DMOSAIC_TELEMETRY=OFF compiles MOSAIC_SPAN out entirely.
///
/// Span names must be string literals (or otherwise outlive the process):
/// the ring buffers store the pointer, not a copy.

#include <cstdint>
#include <string>

#include "support/telemetry/metrics.hpp"

namespace mosaic {
namespace telemetry {

/// Small dense id of the calling thread (0 for the first thread that asks,
/// then 1, 2, ...). Stable for the thread's lifetime; used by the trace
/// export and the structured log sink.
int threadId();

/// Trace id of the calling thread's current trace context, or 0 when no
/// TraceScope is active. Serve assigns one id per job at admission and
/// workers enter it before running the job; the tile scheduler re-enters
/// it on every tile task. Span recording, run-log emission, and the flight
/// recorder all read this, so one job's records correlate end to end.
std::uint64_t currentTraceId();

/// Canonical string form of a trace id ("t-%016llx"), as stamped into
/// run-log records and the flight recorder. Returns "" for id 0.
std::string traceIdString(std::uint64_t traceId);

/// Allocate a fresh nonzero trace id (process-unique, deterministic
/// sequence seeded by the pid so ids from a restarted daemon don't
/// collide with its journal's ids).
std::uint64_t newTraceId();

/// RAII: installs `traceId` as the calling thread's trace context, and
/// restores the previous context (usually 0) on destruction. Entering id
/// 0 is allowed and means "no trace" — used to mask an outer context.
class TraceScope {
 public:
  explicit TraceScope(std::uint64_t traceId);
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
  ~TraceScope();

 private:
  std::uint64_t previous_;
};

/// Nanoseconds on the steady clock since the process-wide trace epoch
/// (the first call in the process).
std::uint64_t nowNs();

/// Runtime switch for span *recording*. Off by default; histograms are
/// collected regardless.
bool traceEnabled();
void setTraceEnabled(bool enabled);

/// Drop all recorded events (and overwrite counts) from every thread.
void clearTrace();

/// Events recorded so far, across all threads.
std::uint64_t traceEventCount();
/// Events lost to ring-buffer overwriting (oldest-first) so far.
std::uint64_t traceDroppedCount();

/// Render everything recorded so far as a Chrome trace_event JSON
/// document ({"traceEvents": [...]}). Safe to call while spans are still
/// being recorded (per-thread buffers are locked one at a time).
std::string chromeTraceJson();

/// chromeTraceJson() to a file. Throws on I/O failure.
void writeChromeTrace(const std::string& path);

/// One instrumentation site: the literal name plus its latency histogram,
/// resolved once (function-local static in MOSAIC_SPAN).
struct SpanSite {
  explicit SpanSite(const char* spanName)
      : name(spanName), histogram(metrics().histogram(spanName)) {}
  const char* name;
  Histogram& histogram;
};

namespace detail {
void recordSpan(const char* name, std::uint64_t startNs, std::uint64_t durNs);
}

/// RAII span: times the enclosing scope, feeds the site histogram, and
/// (when tracing) the thread ring buffer.
class ScopedSpan {
 public:
  explicit ScopedSpan(SpanSite& site) : site_(site), startNs_(nowNs()) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    const std::uint64_t durNs = nowNs() - startNs_;
    site_.histogram.record(static_cast<double>(durNs) * 1e-3);
    if (traceEnabled()) detail::recordSpan(site_.name, startNs_, durNs);
  }

 private:
  SpanSite& site_;
  std::uint64_t startNs_;
};

}  // namespace telemetry
}  // namespace mosaic

#if defined(MOSAIC_TELEMETRY_DISABLED)
#define MOSAIC_SPAN(name) static_cast<void>(0)
#else
#define MOSAIC_SPAN_CONCAT2(a, b) a##b
#define MOSAIC_SPAN_CONCAT(a, b) MOSAIC_SPAN_CONCAT2(a, b)
#define MOSAIC_SPAN(name)                                                    \
  static ::mosaic::telemetry::SpanSite MOSAIC_SPAN_CONCAT(mosaicSpanSite_,   \
                                                          __LINE__){name};   \
  ::mosaic::telemetry::ScopedSpan MOSAIC_SPAN_CONCAT(mosaicSpan_, __LINE__)( \
      MOSAIC_SPAN_CONCAT(mosaicSpanSite_, __LINE__))
#endif
