# Empty compiler generated dependencies file for fig3_epe_samples.
# This may be replaced when dependencies are built.
