/// Unit tests for the geometry library: layouts, rasterization, edge and
/// sample extraction, bitmap morphology and topology.

#include <gtest/gtest.h>

#include <algorithm>

#include "geometry/bitmap_ops.hpp"
#include "geometry/edges.hpp"
#include "geometry/layout.hpp"
#include "geometry/raster.hpp"
#include "math/stats.hpp"

namespace mosaic {
namespace {

Layout singleRectLayout(int x0, int y0, int x1, int y1, int clip = 64) {
  Layout l;
  l.name = "test";
  l.sizeNm = clip;
  l.addRect(x0, y0, x1, y1);
  return l;
}

// --------------------------------------------------------------- layout

TEST(Layout, RectBasics) {
  RectNm r{10, 20, 30, 50};
  EXPECT_EQ(r.width(), 20);
  EXPECT_EQ(r.height(), 30);
  EXPECT_EQ(r.area(), 600);
  EXPECT_TRUE(r.valid());
  EXPECT_TRUE(r.contains(10.0, 20.0));
  EXPECT_FALSE(r.contains(30.0, 20.0));  // half-open
}

TEST(Layout, RectIntersection) {
  RectNm a{0, 0, 10, 10};
  RectNm b{10, 0, 20, 10};  // abutting, not intersecting
  RectNm c{5, 5, 15, 15};
  EXPECT_FALSE(a.intersects(b));
  EXPECT_TRUE(a.intersects(c));
  EXPECT_TRUE(c.intersects(b));
}

TEST(Layout, AddRectValidation) {
  Layout l;
  l.name = "v";
  l.sizeNm = 100;
  EXPECT_THROW(l.addRect(10, 10, 10, 20), InvalidArgument);   // degenerate
  EXPECT_THROW(l.addRect(-5, 0, 10, 10), InvalidArgument);    // out of clip
  EXPECT_THROW(l.addRect(0, 0, 101, 10), InvalidArgument);    // out of clip
  EXPECT_NO_THROW(l.addRect(0, 0, 100, 100));
}

TEST(Layout, CoversUnion) {
  Layout l;
  l.name = "u";
  l.sizeNm = 100;
  l.addRect(0, 0, 10, 10);
  l.addRect(20, 20, 30, 30);
  EXPECT_TRUE(l.covers(5, 5));
  EXPECT_TRUE(l.covers(25, 25));
  EXPECT_FALSE(l.covers(15, 15));
}

TEST(Layout, PatternAreaAndOverlapDetection) {
  Layout l;
  l.name = "a";
  l.sizeNm = 100;
  l.addRect(0, 0, 10, 10);
  l.addRect(10, 0, 20, 10);  // abutting is fine
  EXPECT_EQ(l.patternArea(), 200);
  l.addRect(5, 5, 15, 15);  // overlaps both
  EXPECT_THROW(l.patternArea(), InvalidArgument);
}

// --------------------------------------------------------------- raster

class RasterPixelSizes : public ::testing::TestWithParam<int> {};

TEST_P(RasterPixelSizes, ExactAreaForAlignedRect) {
  const int px = GetParam();
  const Layout l = singleRectLayout(8, 16, 40, 48, 64);
  const BitGrid g = rasterize(l, px);
  EXPECT_EQ(g.rows(), 64 / px);
  // 32 x 32 nm rect -> (32/px)^2 pixels.
  EXPECT_EQ(popcount(g), static_cast<long long>(32 / px) * (32 / px));
}

INSTANTIATE_TEST_SUITE_P(Pixels, RasterPixelSizes,
                         ::testing::Values(1, 2, 4, 8));

TEST(Raster, PixelMustDivideClip) {
  const Layout l = singleRectLayout(0, 0, 10, 10, 100);
  EXPECT_THROW(rasterize(l, 3), InvalidArgument);
  EXPECT_THROW(gridSizeFor(l, 0), InvalidArgument);
}

TEST(Raster, PlacementMatchesCoordinates) {
  const Layout l = singleRectLayout(4, 8, 12, 16, 32);
  const BitGrid g = rasterize(l, 4);
  // x in [4,12) -> cols 1..2; y in [8,16) -> rows 2..3.
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 8; ++c) {
      const bool want = (c >= 1 && c < 3 && r >= 2 && r < 4);
      EXPECT_EQ(g(r, c) != 0, want) << "at (" << r << "," << c << ")";
    }
  }
}

TEST(Raster, UnalignedRectUsesCenterSampling) {
  // Rect [3, 9) at 4 nm pixels: pixel 0 center 2 (out), pixel 1 center 6
  // (in), pixel 2 center 10 (out).
  Layout l;
  l.name = "c";
  l.sizeNm = 16;
  l.addRect(3, 0, 9, 16);
  const BitGrid g = rasterize(l, 4);
  EXPECT_EQ(g(0, 0), 0u);
  EXPECT_EQ(g(0, 1), 1u);
  EXPECT_EQ(g(0, 2), 0u);
}

TEST(RasterGray, MatchesBinaryForAlignedLayouts) {
  const Layout l = singleRectLayout(8, 16, 40, 48, 64);
  const RealGrid gray = rasterizeGray(l, 4);
  const BitGrid binary = rasterize(l, 4);
  for (std::size_t i = 0; i < gray.size(); ++i) {
    EXPECT_DOUBLE_EQ(gray.data()[i], binary.data()[i] ? 1.0 : 0.0);
  }
}

TEST(RasterGray, PartialCoverageIsExactFraction) {
  // Rect [3, 9) x [0, 16) at 4 nm pixels: pixel column 0 covers x [0,4):
  // overlap [3,4) = 1/4; column 1 fully covered; column 2 covers [8,9) =
  // 1/4.
  Layout l;
  l.name = "frac";
  l.sizeNm = 16;
  l.addRect(3, 0, 9, 16);
  const RealGrid gray = rasterizeGray(l, 4);
  EXPECT_DOUBLE_EQ(gray(0, 0), 0.25);
  EXPECT_DOUBLE_EQ(gray(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(gray(0, 2), 0.25);
  EXPECT_DOUBLE_EQ(gray(0, 3), 0.0);
}

TEST(RasterGray, TotalCoverageEqualsArea) {
  Layout l;
  l.name = "two";
  l.sizeNm = 64;
  l.addRect(5, 7, 23, 29);   // unaligned
  l.addRect(30, 30, 61, 53);
  const RealGrid gray = rasterizeGray(l, 4);
  double covered = 0.0;
  for (double v : gray) covered += v;
  EXPECT_NEAR(covered * 16.0, static_cast<double>(l.patternArea()), 1e-9);
}

TEST(RasterGray, AbuttingRectsSumToOne) {
  Layout l;
  l.name = "abut";
  l.sizeNm = 16;
  l.addRect(0, 0, 6, 16);
  l.addRect(6, 0, 16, 16);  // pixel 1 covers x [4,8): 0.5 + 0.5
  const RealGrid gray = rasterizeGray(l, 4);
  EXPECT_DOUBLE_EQ(gray(0, 1), 1.0);
}

// ---------------------------------------------------------------- edges

TEST(Edges, SingleRectHasFourEdges) {
  const Layout l = singleRectLayout(8, 8, 40, 24, 64);
  const BitGrid g = rasterize(l, 8);  // rect = cols 1..4, rows 1..2
  const auto edges = extractEdges(g);
  ASSERT_EQ(edges.size(), 4u);
  int horizontal = 0;
  int vertical = 0;
  for (const auto& e : edges) {
    if (e.horizontal) {
      ++horizontal;
      EXPECT_EQ(e.length(), 4);
    } else {
      ++vertical;
      EXPECT_EQ(e.length(), 2);
    }
  }
  EXPECT_EQ(horizontal, 2);
  EXPECT_EQ(vertical, 2);
}

TEST(Edges, PolarityOfTopAndBottom) {
  const Layout l = singleRectLayout(8, 8, 40, 24, 64);
  const BitGrid g = rasterize(l, 8);
  const auto edges = extractEdges(g);
  for (const auto& e : edges) {
    if (!e.horizontal) continue;
    if (e.boundary == 1) {
      EXPECT_FALSE(e.insideLow);  // bottom edge: pattern above
    } else {
      EXPECT_EQ(e.boundary, 3);
      EXPECT_TRUE(e.insideLow);  // top edge: pattern below
    }
  }
}

TEST(Edges, LShapeEdgeCount) {
  // L-shape: 8 boundary segments (6 corners -> 6 edges in rectilinear
  // geometry... an L has 6 edges).
  Layout l;
  l.name = "L";
  l.sizeNm = 64;
  l.addRect(8, 8, 24, 40);
  l.addRect(24, 8, 48, 24);
  const BitGrid g = rasterize(l, 8);
  const auto edges = extractEdges(g);
  EXPECT_EQ(edges.size(), 6u);
}

TEST(Edges, PatternTouchingBorderStillProducesEdges) {
  Layout l;
  l.name = "b";
  l.sizeNm = 32;
  l.addRect(0, 0, 32, 16);
  const BitGrid g = rasterize(l, 8);
  const auto edges = extractEdges(g);
  // bottom (boundary 0), top (boundary 2), left (0), right (4).
  EXPECT_EQ(edges.size(), 4u);
}

TEST(Edges, PolarityFlipSplitsRuns) {
  // Two blocks meeting at the same boundary line from opposite sides:
  // the boundary row carries two runs with opposite polarity, which must
  // not be merged into one segment.
  BitGrid g(4, 6, 0);
  g(0, 0) = g(0, 1) = g(0, 2) = 1;  // below boundary 1, cols 0..2
  g(1, 3) = g(1, 4) = g(1, 5) = 1;  // above boundary 1, cols 3..5
  const auto edges = extractEdges(g);
  int runsAtBoundary1 = 0;
  for (const auto& e : edges) {
    if (e.horizontal && e.boundary == 1) {
      ++runsAtBoundary1;
      EXPECT_EQ(e.length(), 3);
    }
  }
  EXPECT_EQ(runsAtBoundary1, 2);
}

TEST(Edges, CheckerboardEveryPixelIsItsOwnIsland) {
  BitGrid g(4, 4, 0);
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) g(r, c) = (r + c) % 2;
  }
  const auto edges = extractEdges(g);
  // 8 set pixels, each contributing 4 unit edges; no merges are possible
  // along a boundary without a polarity flip between adjacent tracks.
  long long total = 0;
  for (const auto& e : edges) total += e.length();
  EXPECT_EQ(total, 8 * 4);
}

TEST(Samples, SpacingAndCount) {
  std::vector<EdgeSegment> edges = {
      {true, 4, 0, 39, true},  // length 40
  };
  const auto samples = placeSamples(edges, 10);
  ASSERT_EQ(samples.size(), 4u);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].along - samples[i - 1].along, 10);
  }
  // Centered: margins roughly equal.
  EXPECT_GE(samples.front().along, 0);
  EXPECT_LE(samples.back().along, 39);
}

TEST(Samples, ShortRunGetsMidpoint) {
  std::vector<EdgeSegment> edges = {{false, 2, 10, 14, false}};  // length 5
  const auto samples = placeSamples(edges, 10);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].along, 12);
  EXPECT_FALSE(samples[0].horizontal);
}

TEST(Samples, TooShortRunSkipped) {
  std::vector<EdgeSegment> edges = {{true, 2, 10, 10, false}};  // length 1
  EXPECT_TRUE(placeSamples(edges, 10, 2).empty());
}

TEST(Samples, InvalidSpacingThrows) {
  EXPECT_THROW(placeSamples({}, 0), InvalidArgument);
  EXPECT_THROW(placeSamples({}, 5, 0), InvalidArgument);
}

TEST(Samples, RectEndToEnd) {
  const Layout l = singleRectLayout(8, 8, 56, 24, 64);
  const BitGrid g = rasterize(l, 2);  // rect 24x8 px at rows 4..11, cols 4..27
  const auto samples = extractSamples(g, 10);
  EXPECT_GT(samples.size(), 4u);
  for (const auto& s : samples) {
    if (s.horizontal) {
      EXPECT_TRUE(s.boundary == 4 || s.boundary == 12);
    } else {
      EXPECT_TRUE(s.boundary == 4 || s.boundary == 28);
    }
  }
}

// ----------------------------------------------------------- bitmap ops

TEST(BitmapOps, BooleanTruthTables) {
  BitGrid a(1, 4);
  BitGrid b(1, 4);
  a(0, 0) = 0; b(0, 0) = 0;
  a(0, 1) = 0; b(0, 1) = 1;
  a(0, 2) = 1; b(0, 2) = 0;
  a(0, 3) = 1; b(0, 3) = 1;
  const BitGrid andG = bitAnd(a, b);
  const BitGrid orG = bitOr(a, b);
  const BitGrid xorG = bitXor(a, b);
  const BitGrid notG = bitNot(a);
  const BitGrid subG = bitSub(a, b);
  const unsigned char andWant[] = {0, 0, 0, 1};
  const unsigned char orWant[] = {0, 1, 1, 1};
  const unsigned char xorWant[] = {0, 1, 1, 0};
  const unsigned char notWant[] = {1, 1, 0, 0};
  const unsigned char subWant[] = {0, 0, 1, 0};
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(andG(0, c), andWant[c]);
    EXPECT_EQ(orG(0, c), orWant[c]);
    EXPECT_EQ(xorG(0, c), xorWant[c]);
    EXPECT_EQ(notG(0, c), notWant[c]);
    EXPECT_EQ(subG(0, c), subWant[c]);
  }
}

TEST(BitmapOps, ShapeMismatchThrows) {
  BitGrid a(2, 2);
  BitGrid b(2, 3);
  EXPECT_THROW(bitAnd(a, b), InvalidArgument);
  EXPECT_THROW(bitOr(a, b), InvalidArgument);
  EXPECT_THROW(bitXor(a, b), InvalidArgument);
  EXPECT_THROW(bitSub(a, b), InvalidArgument);
}

TEST(BitmapOps, DilateGrowsSquare) {
  BitGrid g(9, 9, 0);
  g(4, 4) = 1;
  const BitGrid d = dilateSquare(g, 2);
  EXPECT_EQ(countSet(d), 25);  // 5x5 block
  for (int r = 2; r <= 6; ++r) {
    for (int c = 2; c <= 6; ++c) EXPECT_EQ(d(r, c), 1u);
  }
}

TEST(BitmapOps, DilateRadiusZeroIsIdentity) {
  BitGrid g(4, 4, 0);
  g(1, 2) = 1;
  EXPECT_EQ(dilateSquare(g, 0), g);
  EXPECT_EQ(erodeSquare(g, 0), g);
  EXPECT_THROW(dilateSquare(g, -1), InvalidArgument);
}

TEST(BitmapOps, ErodeShrinksBlock) {
  BitGrid g(9, 9, 0);
  for (int r = 2; r <= 6; ++r) {
    for (int c = 2; c <= 6; ++c) g(r, c) = 1;
  }
  const BitGrid e = erodeSquare(g, 1);
  EXPECT_EQ(countSet(e), 9);  // 3x3 core
  EXPECT_EQ(e(4, 4), 1u);
  EXPECT_EQ(e(2, 2), 0u);
}

TEST(BitmapOps, ErodeOfDilateContainsOriginal) {
  BitGrid g(16, 16, 0);
  for (int r = 5; r <= 9; ++r) {
    for (int c = 4; c <= 11; ++c) g(r, c) = 1;
  }
  const BitGrid closed = erodeSquare(dilateSquare(g, 2), 2);
  // Closing is extensive on this convex shape: equals the original.
  EXPECT_EQ(closed, g);
}

TEST(BitmapOps, DilationAtImageBorderClamps) {
  BitGrid g(4, 4, 0);
  g(0, 0) = 1;
  const BitGrid d = dilateSquare(g, 1);
  EXPECT_EQ(countSet(d), 4);  // 2x2 corner block
}

TEST(BitmapOps, ManhattanDistanceKnownField) {
  BitGrid g(3, 3, 0);
  g(1, 1) = 1;
  const Grid<int> d = manhattanDistance(g);
  EXPECT_EQ(d(1, 1), 0);
  EXPECT_EQ(d(0, 1), 1);
  EXPECT_EQ(d(0, 0), 2);
  EXPECT_EQ(d(2, 2), 2);
}

TEST(BitmapOps, ManhattanDistanceEmptyGrid) {
  BitGrid g(3, 4, 0);
  const Grid<int> d = manhattanDistance(g);
  EXPECT_EQ(d(0, 0), 7);  // rows+cols sentinel
}

TEST(BitmapOps, ComponentsFourVsEightConnectivity) {
  BitGrid g(4, 4, 0);
  g(0, 0) = 1;
  g(1, 1) = 1;  // diagonal neighbors
  EXPECT_EQ(countComponents(g, false), 2);
  EXPECT_EQ(countComponents(g, true), 1);
}

TEST(BitmapOps, ComponentLabelsAreConsistent) {
  BitGrid g(5, 5, 0);
  g(0, 0) = 1;
  g(0, 1) = 1;
  g(4, 4) = 1;
  int count = 0;
  const Grid<int> labels = labelComponents(g, false, &count);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(labels(0, 0), labels(0, 1));
  EXPECT_NE(labels(0, 0), labels(4, 4));
  EXPECT_EQ(labels(2, 2), 0);
}

TEST(BitmapOps, DonutHasOneHole) {
  BitGrid g(7, 7, 0);
  for (int r = 1; r <= 5; ++r) {
    for (int c = 1; c <= 5; ++c) g(r, c) = 1;
  }
  g(3, 3) = 0;
  EXPECT_EQ(countHoles(g), 1);
}

TEST(BitmapOps, OpenBayIsNotAHole) {
  // Background notch connected to the border must not count.
  BitGrid g(5, 5, 0);
  for (int r = 1; r <= 3; ++r) {
    for (int c = 1; c <= 3; ++c) g(r, c) = 1;
  }
  g(1, 2) = 0;  // notch opening to the top border via (0,2)
  EXPECT_EQ(countHoles(g), 0);
}

TEST(BitmapOps, SolidGridHasNoHoles) {
  BitGrid g(4, 4, 1);
  EXPECT_EQ(countHoles(g), 0);
  BitGrid empty(4, 4, 0);
  EXPECT_EQ(countHoles(empty), 0);
}

TEST(BitmapOps, TwoHolesCounted) {
  BitGrid g(5, 9, 0);
  for (int r = 1; r <= 3; ++r) {
    for (int c = 1; c <= 7; ++c) g(r, c) = 1;
  }
  g(2, 2) = 0;
  g(2, 6) = 0;
  EXPECT_EQ(countHoles(g), 2);
}

}  // namespace
}  // namespace mosaic
