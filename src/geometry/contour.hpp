#pragma once
/// \file contour.hpp
/// Binary-raster boundary extraction: closed rectilinear contours (for
/// perimeter / vertex statistics and mask complexity metrics) and raster ->
/// rectangle decomposition (for exporting optimized masks as geometry).

#include <vector>

#include "geometry/layout.hpp"
#include "geometry/polygon.hpp"
#include "math/grid.hpp"

namespace mosaic {

/// One closed boundary loop in pixel-corner coordinates. Outer boundaries
/// wind counter-clockwise, hole boundaries clockwise (interior always on
/// the left of the walking direction).
struct Contour {
  std::vector<PointNm> points;  ///< corner vertices, implicitly closed

  [[nodiscard]] std::size_t vertexCount() const { return points.size(); }
  [[nodiscard]] bool isHole() const;  ///< true if clockwise
  /// Perimeter length in pixel units.
  [[nodiscard]] long long perimeter() const;
};

/// Trace all boundary loops of a binary raster. Vertices are in pixel
/// corners (multiply by the pixel pitch for nm).
std::vector<Contour> traceContours(const BitGrid& grid);

/// Total boundary length of a raster in pixels.
long long totalPerimeter(const BitGrid& grid);

/// Total number of contour vertices (mask complexity / e-beam shot proxy).
long long totalVertices(const BitGrid& grid);

/// Decompose a raster into disjoint rectangles (in pixel units, scaled by
/// pixelNm), greedily merging identical row runs vertically. The result's
/// union reproduces the raster exactly.
std::vector<RectNm> rasterToRects(const BitGrid& grid, int pixelNm);

/// Convenience: wrap rasterToRects into a Layout (name + clip size taken
/// from arguments).
Layout rasterToLayout(const BitGrid& grid, int pixelNm,
                      const std::string& name);

}  // namespace mosaic
