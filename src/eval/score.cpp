#include "eval/score.hpp"

#include "support/error.hpp"

namespace mosaic {

double contestScore(double runtimeSec, double pvbandAreaNm2,
                    int epeViolations, int shapeViolations,
                    const ScoreWeights& weights) {
  MOSAIC_CHECK(runtimeSec >= 0 && pvbandAreaNm2 >= 0 && epeViolations >= 0 &&
                   shapeViolations >= 0,
               "score ingredients must be non-negative");
  return weights.runtime * runtimeSec + weights.pvband * pvbandAreaNm2 +
         weights.epe * epeViolations + weights.shape * shapeViolations;
}

}  // namespace mosaic
