/// \file bm_parallel.cpp
/// Executor benchmarks (docs/performance.md, "Threading model"): the
/// persistent work-stealing pool against the legacy spawn-per-call
/// scheduler, and cache-aware chip scheduling against unordered dispatch.
///
/// Three phases, all recorded in BENCH_parallel.json:
///   dispatch  per-call overhead of parallelFor on a small range — the
///             pool reuses warm workers where the legacy path spawns and
///             joins fresh std::threads every call.
///   nested    a replicated chip through the tile scheduler at 1/2/4
///             workers on the pool (outer tile loop + inner PV-corner
///             loops share the worker set), with the stitched mask checked
///             bit-for-bit against the spawn scheduler.
///   cache     a repetitive 10x10 cell chip, cold, with cache-aware
///             ordering (representatives first, then exact-hit pastes)
///             versus the same cold run unordered.
///
/// --dispatch-only with --min-dispatch-speedup 1.0 is the tier-1
/// `parallel_pool_smoke` ctest: the pool must never lose to spawn.

#include <algorithm>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "suite/testcases.hpp"
#include "support/cli.hpp"
#include "support/log.hpp"
#include "support/parallel.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"
#include "tile/scheduler.hpp"

namespace {

using namespace mosaic;

struct DispatchResult {
  double spawnUsPerCall = 0.0;
  double poolUsPerCall = 0.0;
  double speedup = 0.0;
};

/// Per-call parallelFor overhead on a small range: the body is a handful
/// of arithmetic per index, so the measurement is dominated by dispatch
/// (thread spawn/join vs enqueue/wakeup), not by work.
DispatchResult runDispatchPhase(int workers, int range, int calls) {
  setParallelism(workers);
  std::vector<double> sink(static_cast<std::size_t>(range), 0.0);
  const auto body = [&sink](std::size_t i) {
    double x = static_cast<double>(i) + 1.0;
    x = x * 1.0000001 + 0.5 / x;
    sink[i] += x;
  };
  const auto measure = [&](ParallelBackend backend) {
    setParallelBackend(backend);
    for (int c = 0; c < calls / 10 + 1; ++c) {  // warm-up: threads, pages
      parallelFor(0, static_cast<std::size_t>(range), body);
    }
    WallTimer timer;
    for (int c = 0; c < calls; ++c) {
      parallelFor(0, static_cast<std::size_t>(range), body);
    }
    return timer.seconds() * 1e6 / calls;
  };

  DispatchResult r;
  r.poolUsPerCall = measure(ParallelBackend::kPool);
  r.spawnUsPerCall = measure(ParallelBackend::kSpawn);
  setParallelBackend(ParallelBackend::kPool);
  r.speedup = r.poolUsPerCall > 0.0 ? r.spawnUsPerCall / r.poolUsPerCall
                                    : 0.0;
  std::printf("== dispatch overhead: range %d, %d workers, %d calls ==\n",
              range, workers, calls);
  std::printf("spawn: %8.1f us/call\npool:  %8.1f us/call  (%.1fx lower)\n",
              r.spawnUsPerCall, r.poolUsPerCall, r.speedup);
  return r;
}

bool masksIdentical(const BitGrid& a, const BitGrid& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) {
      if (a(r, c) != b(r, c)) return false;
    }
  }
  return true;
}

/// A 512 nm cell with three bars — small enough that a tile optimizes in
/// well under a second, repetitive enough that a KxK replication collapses
/// to ~9 fingerprint classes (corner / edge / interior halo differences).
Layout repetitiveChip(int replicate) {
  Layout cell;
  cell.name = "bm_parallel_cell";
  cell.sizeNm = 512;
  cell.addRect(96, 80, 416, 144);
  cell.addRect(96, 224, 288, 288);
  cell.addRect(96, 368, 416, 432);
  return replicateLayout(cell, replicate, replicate);
}

ChipConfig chipConfig(const std::string& kernelCache) {
  ChipConfig cfg;
  cfg.tiling.tileSizeNm = 512;
  cfg.tiling.haloNm = 128;
  cfg.tiling.pixelNm = 16;
  cfg.optics.pixelNm = 16;
  cfg.method = OpcMethod::kMosaicFast;
  cfg.iterations = 4;
  cfg.kernelCacheDir = kernelCache;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  bool dispatchOnly = false;
  int dispatchRange = 64;
  int dispatchCalls = 300;
  int dispatchWorkers = 4;
  int replicate = 10;
  double minDispatchSpeedup = 0.0;
  double maxNestedRatio = 0.0;
  double minHitRate = 0.0;
  std::string jsonPath = "BENCH_parallel.json";
  std::string logLevel = "warn";

  CliParser cli("bm_parallel",
                "work-stealing executor vs spawn-per-call dispatch, nested "
                "chip scaling, cache-aware tile ordering");
  cli.addFlag("dispatch-only", &dispatchOnly,
              "run only the dispatch-overhead phase (the ctest gate)");
  cli.addInt("range", &dispatchRange, "parallelFor range per dispatch call");
  cli.addInt("calls", &dispatchCalls, "timed parallelFor calls");
  cli.addInt("workers", &dispatchWorkers, "worker count for the dispatch phase");
  cli.addInt("replicate", &replicate,
             "cell replication per axis for the cache-aware phase");
  cli.addDouble("min-dispatch-speedup", &minDispatchSpeedup,
                "fail unless pool dispatch beats spawn by this (0 = report)");
  cli.addDouble("max-nested-ratio", &maxNestedRatio,
                "fail unless 2-worker chip time <= ratio * 1-worker time "
                "(0 = report)");
  cli.addDouble("min-hit-rate", &minHitRate,
                "fail unless the ordered cold run pastes this fraction of "
                "tiles from cache, and beats the unordered run (0 = report)");
  cli.addString("json", &jsonPath, "output JSON path");
  cli.addString("log", &logLevel, "log level");

  try {
    if (!cli.parse(argc, argv)) return 0;
    setLogLevel(parseLogLevel(logLevel));
    bool ok = true;

    // Phase 1: dispatch overhead.
    const DispatchResult dispatch =
        runDispatchPhase(dispatchWorkers, dispatchRange, dispatchCalls);
    if (minDispatchSpeedup > 0.0 && dispatch.speedup < minDispatchSpeedup) {
      std::fprintf(stderr,
                   "FAIL: pool dispatch speedup %.2fx below the %.2fx floor\n",
                   dispatch.speedup, minDispatchSpeedup);
      ok = false;
    }

    struct NestedRun {
      int workers;
      double seconds;
    };
    std::vector<NestedRun> nested;
    double nestedRatio2 = 0.0;
    bool bitIdentical = true;
    double orderedSeconds = 0.0, unorderedSeconds = 0.0, hitRate = 0.0;
    int representatives = 0, tiles = 0;

    if (!dispatchOnly) {
      // Phase 2: nested chip scaling, pool vs the spawn oracle.
      const std::string kernelCache = "bm_parallel_kernels";
      const Layout smallChip =
          replicateLayout(buildTestcase(1), 2, 2);
      ChipConfig cfg = chipConfig(kernelCache);
      setParallelism(1);
      const ChipResult warm = optimizeChip(smallChip, cfg);  // kernel cache
      MOSAIC_CHECK(warm.allOk(), "warm-up chip run failed");

      TextTable table;
      table.setHeader({"workers", "time (s)", "speedup"});
      for (const int workers : {1, 2, 4}) {
        setParallelism(workers);
        const ChipResult res = optimizeChip(smallChip, cfg);
        MOSAIC_CHECK(res.allOk(), "chip run failed at " << workers
                                                        << " workers");
        nested.push_back({workers, res.wallSeconds});
        table.addRow({std::to_string(workers),
                      TextTable::num(res.wallSeconds, 2),
                      TextTable::num(nested.front().seconds / res.wallSeconds,
                                     2)});
        if (workers == 2) {
          setParallelBackend(ParallelBackend::kSpawn);
          const ChipResult oracle = optimizeChip(smallChip, cfg);
          setParallelBackend(ParallelBackend::kPool);
          MOSAIC_CHECK(oracle.allOk(), "spawn oracle chip run failed");
          bitIdentical = masksIdentical(res.stitched.maskBinary,
                                        oracle.stitched.maskBinary);
        }
      }
      nestedRatio2 = nested[1].seconds / nested[0].seconds;
      std::printf("== nested chip: %d tiles, pool backend ==\n",
                  warm.partition.tileCount());
      std::printf("%s", table.render().c_str());
      const int hwThreads =
          std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
      std::printf("2-worker/1-worker ratio: %.2f (on %d hardware "
                  "thread(s)), mask vs spawn backend: %s\n",
                  nestedRatio2, hwThreads,
                  bitIdentical ? "bit-identical" : "DIFFERS");
      const PoolStats stats = poolStats();
      std::printf("pool: %llu tasks, %llu stolen, %llu idle trims\n",
                  static_cast<unsigned long long>(stats.tasksExecuted),
                  static_cast<unsigned long long>(stats.tasksStolen),
                  static_cast<unsigned long long>(stats.idleTrims));
      if (!bitIdentical) {
        std::fprintf(stderr,
                     "FAIL: pool-scheduled mask differs from spawn oracle\n");
        ok = false;
      }
      if (maxNestedRatio > 0.0 && nestedRatio2 > maxNestedRatio) {
        if (hwThreads < 2) {
          // A second worker cannot speed anything up on one CPU; report
          // instead of failing (mirrors fft_simd_smoke without AVX2).
          std::printf("nested-ratio gate skipped: 1 hardware thread\n");
        } else {
          std::fprintf(stderr,
                       "FAIL: 2-worker ratio %.2f above the %.2f ceiling\n",
                       nestedRatio2, maxNestedRatio);
          ok = false;
        }
      }

      // Phase 3: cache-aware ordering, cold ordered vs cold unordered.
      setParallelism(4);
      const Layout chip = repetitiveChip(replicate);
      const auto coldRun = [&](bool ordered) {
        const std::string store = ordered ? "bm_parallel_cache_ordered"
                                          : "bm_parallel_cache_unordered";
        std::filesystem::remove_all(store);  // cold means cold
        ChipConfig c = chipConfig(kernelCache);
        c.patternCacheDir = store;
        c.cacheAwareOrder = ordered;
        const ChipResult res = optimizeChip(chip, c);
        MOSAIC_CHECK(res.allOk(), "cache phase chip run failed");
        return res;
      };
      const ChipResult ordered = coldRun(true);
      const ChipResult unordered = coldRun(false);
      orderedSeconds = ordered.wallSeconds;
      unorderedSeconds = unordered.wallSeconds;
      representatives = ordered.representatives;
      int pasted = 0;
      tiles = 0;
      for (const TileOutcome& o : ordered.outcomes) {
        if (o.skippedEmpty) continue;
        ++tiles;
        if (o.fromCache) ++pasted;
      }
      hitRate = tiles > 0 ? static_cast<double>(pasted) / tiles : 0.0;
      std::printf("== cache-aware ordering: %d tiles, %d classes ==\n",
                  tiles, representatives);
      std::printf("ordered cold:   %.2f s (%d optimized, %d pasted, %.1f%% "
                  "paste rate)\n",
                  orderedSeconds, representatives, pasted, 100.0 * hitRate);
      std::printf("unordered cold: %.2f s (%.2fx slower)\n", unorderedSeconds,
                  orderedSeconds > 0.0 ? unorderedSeconds / orderedSeconds
                                       : 0.0);
      if (minHitRate > 0.0) {
        if (hitRate < minHitRate) {
          std::fprintf(stderr,
                       "FAIL: paste rate %.3f below the %.3f floor\n",
                       hitRate, minHitRate);
          ok = false;
        }
        if (orderedSeconds >= unorderedSeconds) {
          std::fprintf(stderr,
                       "FAIL: ordered cold run (%.2f s) did not beat the "
                       "unordered run (%.2f s)\n",
                       orderedSeconds, unorderedSeconds);
          ok = false;
        }
      }
      setParallelism(0);
    }

    FILE* json = std::fopen(jsonPath.c_str(), "w");
    MOSAIC_CHECK(json != nullptr, "cannot write " << jsonPath);
    std::fprintf(json,
                 "{\n  \"bench\": \"bm_parallel\",\n"
                 "  \"dispatch\": {\"range\": %d, \"workers\": %d, "
                 "\"spawn_us_per_call\": %.2f, \"pool_us_per_call\": %.2f, "
                 "\"speedup\": %.2f}",
                 dispatchRange, dispatchWorkers, dispatch.spawnUsPerCall,
                 dispatch.poolUsPerCall, dispatch.speedup);
    if (!dispatchOnly) {
      std::fprintf(json, ",\n  \"nested\": {\"runs\": [");
      for (std::size_t i = 0; i < nested.size(); ++i) {
        std::fprintf(json, "{\"workers\": %d, \"seconds\": %.4f}%s",
                     nested[i].workers, nested[i].seconds,
                     i + 1 < nested.size() ? ", " : "");
      }
      std::fprintf(json,
                   "], \"ratio_2w\": %.3f, \"hardware_threads\": %d, "
                   "\"bit_identical\": %s}",
                   nestedRatio2,
                   std::max(1, static_cast<int>(
                                   std::thread::hardware_concurrency())),
                   bitIdentical ? "true" : "false");
      std::fprintf(json,
                   ",\n  \"cache_aware\": {\"tiles\": %d, \"classes\": %d, "
                   "\"paste_rate\": %.4f, \"ordered_seconds\": %.4f, "
                   "\"unordered_seconds\": %.4f}",
                   tiles, representatives, hitRate, orderedSeconds,
                   unorderedSeconds);
    }
    std::fprintf(json, "\n}\n");
    std::fclose(json);
    std::printf("wrote %s\n", jsonPath.c_str());
    return ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bm_parallel: %s\n", e.what());
    return 1;
  }
}
