#pragma once
/// \file fft.hpp
/// From-scratch FFT. Provides cached 1-D radix-2 plans and a 2-D transform
/// over ComplexGrid. This is the computational core of the lithography
/// simulator: every aerial image and every gradient term is a handful of
/// these transforms (paper Sec. 3.5).

#include <complex>
#include <memory>
#include <vector>

#include "math/grid.hpp"

namespace mosaic {

/// Iterative radix-2 decimation-in-time FFT plan for a fixed power-of-two
/// size. Precomputes the bit-reversal permutation and twiddle factors so
/// repeated transforms only pay the butterfly cost.
class FftPlan {
 public:
  /// \param n transform length; must be a power of two >= 1.
  explicit FftPlan(std::size_t n);

  [[nodiscard]] std::size_t size() const { return n_; }

  /// In-place forward DFT: X[k] = sum_j x[j] exp(-2 pi i jk / n).
  void forward(std::complex<double>* data) const;

  /// In-place inverse DFT including the 1/n normalization.
  void inverse(std::complex<double>* data) const;

  [[nodiscard]] static bool isPowerOfTwo(std::size_t n) {
    return n != 0 && (n & (n - 1)) == 0;
  }

 private:
  void transform(std::complex<double>* data, bool invert) const;

  std::size_t n_;
  int logN_;
  std::vector<std::size_t> bitrev_;
  /// Twiddles for the forward transform, stage-packed: the factors for the
  /// stage with half-length h live at [h, 2h).
  std::vector<std::complex<double>> twiddle_;
};

/// 2-D FFT over a ComplexGrid (rows then columns). Both dimensions must be
/// powers of two. Plans are cached per instance, so reuse one Fft2d per
/// grid shape in hot loops. All member functions are const and safe to
/// call concurrently on the same instance (each call uses its own column
/// scratch), which lets the shared fft2dFor instances serve the tile
/// scheduler's worker threads.
class Fft2d {
 public:
  Fft2d(int rows, int cols);

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }

  /// In-place forward 2-D DFT.
  void forward(ComplexGrid& grid) const;
  /// In-place inverse 2-D DFT (normalized by 1/(rows*cols)).
  void inverse(ComplexGrid& grid) const;

  /// Convenience: forward transform of a real grid.
  [[nodiscard]] ComplexGrid forwardReal(const RealGrid& grid) const;

 private:
  void transformRows(ComplexGrid& grid, bool invert) const;
  void transformCols(ComplexGrid& grid, bool invert) const;

  int rows_;
  int cols_;
  FftPlan rowPlan_;
  FftPlan colPlan_;
};

/// Shared plan cache: returns an Fft2d for (rows, cols), constructing it on
/// first use. The cache lookup is mutex-protected and the returned
/// reference stays valid for the process lifetime, so this is safe to call
/// from concurrent workers.
const Fft2d& fft2dFor(int rows, int cols);

}  // namespace mosaic
