#pragma once
/// \file layout.hpp
/// Layout clip model: a named union of axis-aligned rectangles in nanometer
/// coordinates. This matches how the ICCAD 2013 contest clips are consumed
/// (rectilinear M1 shapes inside a 1024 x 1024 nm window).

#include <string>
#include <vector>

#include "support/error.hpp"

namespace mosaic {

/// Axis-aligned rectangle in nm, half-open: [x0, x1) x [y0, y1).
struct RectNm {
  int x0 = 0;
  int y0 = 0;
  int x1 = 0;
  int y1 = 0;

  [[nodiscard]] int width() const { return x1 - x0; }
  [[nodiscard]] int height() const { return y1 - y0; }
  [[nodiscard]] long long area() const {
    return static_cast<long long>(width()) * height();
  }
  [[nodiscard]] bool valid() const { return x1 > x0 && y1 > y0; }

  [[nodiscard]] bool contains(double x, double y) const {
    return x >= x0 && x < x1 && y >= y0 && y < y1;
  }

  [[nodiscard]] bool intersects(const RectNm& o) const {
    return x0 < o.x1 && o.x0 < x1 && y0 < o.y1 && o.y0 < y1;
  }

  bool operator==(const RectNm&) const = default;
};

/// A layout clip: union of rectangles inside a square window of nm size.
struct Layout {
  std::string name;
  int sizeNm = 0;            ///< clip is [0, sizeNm) x [0, sizeNm)
  std::vector<RectNm> rects;

  void addRect(int x0, int y0, int x1, int y1) {
    RectNm r{x0, y0, x1, y1};
    MOSAIC_CHECK(r.valid(), "degenerate rect in layout " << name);
    MOSAIC_CHECK(x0 >= 0 && y0 >= 0 && x1 <= sizeNm && y1 <= sizeNm,
                 "rect [" << x0 << "," << y0 << "," << x1 << "," << y1
                          << "] outside clip of layout " << name);
    rects.push_back(r);
  }

  /// True if (x, y) in nm lies inside the pattern union.
  [[nodiscard]] bool covers(double x, double y) const {
    for (const auto& r : rects) {
      if (r.contains(x, y)) return true;
    }
    return false;
  }

  /// Union area in nm^2 (computed exactly via rasterization-free sweep is
  /// overkill here; rect sets in this library are non-overlapping by
  /// construction, which this method validates).
  [[nodiscard]] long long patternArea() const;

  /// Throws if any two rectangles overlap (the suite generator keeps rect
  /// unions disjoint so that area bookkeeping is exact).
  void validateDisjoint() const;
};

/// Clip a layout against an axis-aligned square window given in the
/// layout's nm coordinates and translate the result to window-local
/// coordinates ([0, window side) x [0, window side)). Rectangles crossing
/// the window boundary are cut at it; rects fully outside are dropped.
/// The window may extend beyond the source layout's bounds (a tile halo
/// hanging off the chip edge) — those regions are simply empty. This is
/// the polygon-clipping primitive of the full-chip tiling engine.
/// \throws InvalidArgument unless the window is square and non-degenerate.
Layout clipLayout(const Layout& source, const RectNm& windowNm,
                  const std::string& name);

/// Step-and-repeat a clip into a kx x ky array: copy (i, j) is offset by
/// (i * pitch, j * pitch) with pitch = source.sizeNm. Used to synthesize
/// full-chip workloads from single-clip testcases.
Layout replicateLayout(const Layout& source, int kx, int ky);

}  // namespace mosaic
