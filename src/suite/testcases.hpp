#pragma once
/// \file testcases.hpp
/// Synthetic ICCAD 2013 style benchmark clips B1..B10. The contest's IBM
/// clips are not redistributable; these generators produce 32 nm-node M1
/// style patterns at the contest geometry (1024 x 1024 nm window) covering
/// the same shape families: isolated and dense lines, contacts, T/L/U
/// shapes, combs, line-end stress and mixed-CD compositions. See DESIGN.md
/// section 3 for the substitution argument.

#include <string>
#include <vector>

#include "geometry/layout.hpp"

namespace mosaic {

/// Number of benchmark clips in the suite.
constexpr int kTestcaseCount = 10;

/// Build testcase `index` in [1, 10] (named "B1".."B10").
Layout buildTestcase(int index);

/// All ten clips in order.
std::vector<Layout> buildAllTestcases();

/// Lookup by name ("B3"); throws on unknown names.
Layout buildTestcaseByName(const std::string& name);

/// Parameters of the seeded random clip generator.
struct RandomClipConfig {
  int featureCount = 8;     ///< shapes to attempt (placement may reject)
  int minCdNm = 48;         ///< narrowest feature dimension
  int maxCdNm = 96;         ///< widest feature dimension
  int minLengthNm = 120;    ///< shortest long axis
  int maxLengthNm = 560;    ///< longest long axis
  int minSpacingNm = 96;    ///< spacing kept between placed shapes
  int marginNm = 160;       ///< keep-out at the clip border
  int gridNm = 8;           ///< coordinates snap to this grid
};

/// Generate a random ICCAD'13-style clip (deterministic per seed): a mix
/// of horizontal/vertical bars, L-shapes and squares, placed greedily with
/// spacing enforcement. Used by robustness sweeps and property tests.
Layout buildRandomClip(std::uint64_t seed,
                       const RandomClipConfig& config = {});

}  // namespace mosaic
