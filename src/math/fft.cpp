#include "math/fft.hpp"

#include <atomic>
#include <mutex>

#include "support/failpoint.hpp"
#include "support/telemetry/trace.hpp"

namespace mosaic {

FftPlan::FftPlan(std::size_t n) : n_(n) {
  MOSAIC_CHECK(isPowerOfTwo(n), "FFT size must be a power of two, got " << n);
  logN_ = 0;
  while ((std::size_t{1} << logN_) < n_) ++logN_;

  bitrev_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    std::size_t rev = 0;
    for (int b = 0; b < logN_; ++b) {
      rev = (rev << 1) | ((i >> b) & 1u);
    }
    bitrev_[i] = rev;
  }

  // Stage-packed twiddles: for half-length h the factors
  // exp(-i pi j / h), j in [0, h) are stored at twiddle_[h + j].
  twiddle_.assign(n_ == 1 ? 1 : n_, {1.0, 0.0});
  for (std::size_t h = 1; h < n_; h <<= 1) {
    const double theta = -3.14159265358979323846 / static_cast<double>(h);
    for (std::size_t j = 0; j < h; ++j) {
      const double a = theta * static_cast<double>(j);
      twiddle_[h + j] = {std::cos(a), std::sin(a)};
    }
  }
}

void FftPlan::transform(std::complex<double>* data, bool invert) const {
  // Bit-reversal permutation.
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(data[i], data[j]);
  }
  // Butterflies, two stages fused per sweep (radix-4 over the data):
  // intermediate values stay in registers instead of round-tripping
  // through memory between stages, and the inverse 1/n scaling is folded
  // into the final sweep. Inverse uses the conjugated twiddles.
  const double fullScale = invert ? 1.0 / static_cast<double>(n_) : 1.0;
  std::size_t h = 1;
  if (logN_ % 2 == 1) {
    // Odd stage count: open with one radix-2 sweep so the rest pairs up.
    const double s = (n_ == 2) ? fullScale : 1.0;
    for (std::size_t base = 0; base < n_; base += 2) {
      const std::complex<double> l = data[base];
      const std::complex<double> t = data[base + 1];
      data[base] = (l + t) * s;
      data[base + 1] = (l - t) * s;
    }
    h = 2;
  }
  for (; h < n_; h <<= 2) {
    // Fused stages (h, 2h): within a 4h block, elements (a, b, c, d) =
    // (j, j+h, j+2h, j+3h) combine with W1 = tw_h[j], W2 = tw_2h[j] and
    // W3 = tw_2h[j+h] = -i W2 (conjugated on inverse).
    const std::size_t len = h << 2;
    const double s = (len >= n_) ? fullScale : 1.0;
    const std::complex<double>* tw1 = &twiddle_[h];
    const std::complex<double>* tw2 = &twiddle_[h << 1];
    for (std::size_t base = 0; base < n_; base += len) {
      std::complex<double>* pa = data + base;
      std::complex<double>* pb = pa + h;
      std::complex<double>* pc = pb + h;
      std::complex<double>* pd = pc + h;
      for (std::size_t j = 0; j < h; ++j) {
        const std::complex<double> w1 = invert ? std::conj(tw1[j]) : tw1[j];
        const std::complex<double> w2c = tw2[j];
        const std::complex<double> w2 = invert ? std::conj(w2c) : w2c;
        const std::complex<double> w3 =
            invert ? std::complex<double>(w2c.imag(), w2c.real())
                   : std::complex<double>(w2c.imag(), -w2c.real());
        const std::complex<double> tb = pb[j] * w1;
        const std::complex<double> td = pd[j] * w1;
        const std::complex<double> a1 = pa[j] + tb;
        const std::complex<double> b1 = pa[j] - tb;
        const std::complex<double> c1 = pc[j] + td;
        const std::complex<double> d1 = pc[j] - td;
        const std::complex<double> t0 = c1 * w2;
        const std::complex<double> t1 = d1 * w3;
        pa[j] = (a1 + t0) * s;
        pc[j] = (a1 - t0) * s;
        pb[j] = (b1 + t1) * s;
        pd[j] = (b1 - t1) * s;
      }
    }
  }
}

void FftPlan::transformReference(std::complex<double>* data,
                                 bool invert) const {
  // The seed engine's butterflies, frozen: one radix-2 sweep per stage
  // and a separate scaling pass on inverse. forwardLegacy/inverseLegacy
  // run on this so the legacy baseline in bench/bm_fft measures the
  // original engine, not one that silently inherits new-path speedups.
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t h = 1; h < n_; h <<= 1) {
    const std::size_t len = h << 1;
    for (std::size_t base = 0; base < n_; base += len) {
      const std::complex<double>* tw = &twiddle_[h];
      std::complex<double>* lo = data + base;
      std::complex<double>* hi = lo + h;
      for (std::size_t j = 0; j < h; ++j) {
        const std::complex<double> w =
            invert ? std::conj(tw[j]) : tw[j];
        const std::complex<double> t = hi[j] * w;
        hi[j] = lo[j] - t;
        lo[j] += t;
      }
    }
  }
  if (invert) {
    const double scale = 1.0 / static_cast<double>(n_);
    for (std::size_t i = 0; i < n_; ++i) data[i] *= scale;
  }
}

void FftPlan::forward(std::complex<double>* data) const {
  transform(data, /*invert=*/false);
}

void FftPlan::inverse(std::complex<double>* data) const {
  transform(data, /*invert=*/true);
}

namespace {

/// Per-thread packed-row workspace for the real-input/real-output paths.
/// Reused across calls so the hot loop never allocates at steady state.
std::vector<std::complex<double>>& packedRowScratch() {
  thread_local std::vector<std::complex<double>> scratch;
  return scratch;
}

}  // namespace

Fft2d::Fft2d(int rows, int cols)
    : rows_(rows),
      cols_(cols),
      rowPlan_(static_cast<std::size_t>(cols)),
      colPlan_(static_cast<std::size_t>(rows)) {
  MOSAIC_CHECK(rows > 0 && cols > 0, "FFT grid must be non-empty");
}

void Fft2d::transformRows(ComplexGrid& grid, bool invert) const {
  for (int r = 0; r < rows_; ++r) {
    std::complex<double>* row = grid.rowPtr(r);
    if (invert) {
      rowPlan_.inverse(row);
    } else {
      rowPlan_.forward(row);
    }
  }
}

void Fft2d::transformCols(ComplexGrid& grid, bool invert,
                          int colLimit) const {
  // Column transforms as row-vector butterflies: run the radix-2
  // algorithm over the row index, where each butterfly combines whole
  // rows element-wise. Every inner loop walks contiguous memory and
  // autovectorizes; there is no per-column gather/scatter and no scratch.
  // The pass is memory-bound at production sizes, so consecutive stage
  // pairs are fused (a radix-4 butterfly over four rows) to halve the
  // number of sweeps over the grid, and the inverse 1/rows scaling rides
  // along on the final sweep instead of paying its own. Columns are
  // independent, so restricting the element loops to [0, colLimit)
  // yields exactly the transforms of those columns (the real-input path
  // uses this to skip the redundant Hermitian half).
  const auto n = static_cast<std::size_t>(rows_);
  if (n == 1) return;
  const auto limit = static_cast<std::size_t>(colLimit) * 2;  // doubles
  auto rowp = [&](std::size_t r) {
    return reinterpret_cast<double*>(grid.rowPtr(static_cast<int>(r)));
  };

  const std::vector<std::size_t>& rev = colPlan_.bitReversal();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = rev[i];
    if (i < j) {
      double* a = rowp(i);
      double* b = rowp(j);
      for (std::size_t c = 0; c < limit; ++c) std::swap(a[c], b[c]);
    }
  }

  const double fullScale = invert ? 1.0 / static_cast<double>(n) : 1.0;
  int stages = 0;
  for (std::size_t s = 1; s < n; s <<= 1) ++stages;
  std::size_t h = 1;
  // Odd stage count: open with one radix-2 sweep so the rest pairs up.
  if (stages % 2 == 1) {
    const double s = (n == 2) ? fullScale : 1.0;
    for (std::size_t base = 0; base < n; base += 2) {
      double* lo = rowp(base);
      double* hi = rowp(base + 1);
      for (std::size_t c = 0; c < limit; ++c) {
        const double l = lo[c];
        const double t = hi[c];
        lo[c] = (l + t) * s;
        hi[c] = (l - t) * s;
      }
    }
    h = 2;
  }

  for (; h < n; h <<= 2) {
    // Fused stages (h, 2h): a 4-row butterfly. Within a 4h block, rows
    // (a, b, c, d) = (j, j+h, j+2h, j+3h) combine with W1 = tw_h[j],
    // W2 = tw_2h[j] and W3 = tw_2h[j+h] = -i W2 (conjugated on inverse).
    const std::size_t len = h << 2;
    const bool lastPass = (len >= n);
    const double s = lastPass ? fullScale : 1.0;
    const std::complex<double>* tw1 = colPlan_.stageTwiddles(h);
    const std::complex<double>* tw2 = colPlan_.stageTwiddles(h << 1);
    for (std::size_t base = 0; base < n; base += len) {
      for (std::size_t j = 0; j < h; ++j) {
        const double c2r = tw2[j].real();
        const double c2i = tw2[j].imag();
        double w1r = tw1[j].real(), w1i = tw1[j].imag();
        double w2r = c2r, w2i = c2i;
        double w3r = c2i, w3i = -c2r;  // W3 = -i W2
        if (invert) {
          w1i = -w1i;
          w2i = -w2i;
          w3i = c2r;  // conj(-i W2) = i conj(W2) = (c2i, c2r)
        }
        double* pa = rowp(base + j);
        double* pb = rowp(base + j + h);
        double* pc = rowp(base + j + 2 * h);
        double* pd = rowp(base + j + 3 * h);
        for (std::size_t c = 0; c < limit; c += 2) {
          const double ar = pa[c], ai = pa[c + 1];
          const double br = pb[c], bi = pb[c + 1];
          const double cr = pc[c], ci = pc[c + 1];
          const double dr = pd[c], di = pd[c + 1];
          // Stage h: (a,b) and (c,d) with W1.
          const double tbr = br * w1r - bi * w1i;
          const double tbi = br * w1i + bi * w1r;
          const double tdr = dr * w1r - di * w1i;
          const double tdi = dr * w1i + di * w1r;
          const double a1r = ar + tbr, a1i = ai + tbi;
          const double b1r = ar - tbr, b1i = ai - tbi;
          const double c1r = cr + tdr, c1i = ci + tdi;
          const double d1r = cr - tdr, d1i = ci - tdi;
          // Stage 2h: (a1,c1) with W2, (b1,d1) with W3.
          const double t0r = c1r * w2r - c1i * w2i;
          const double t0i = c1r * w2i + c1i * w2r;
          const double t1r = d1r * w3r - d1i * w3i;
          const double t1i = d1r * w3i + d1i * w3r;
          pa[c] = (a1r + t0r) * s;
          pa[c + 1] = (a1i + t0i) * s;
          pc[c] = (a1r - t0r) * s;
          pc[c + 1] = (a1i - t0i) * s;
          pb[c] = (b1r + t1r) * s;
          pb[c + 1] = (b1i + t1i) * s;
          pd[c] = (b1r - t1r) * s;
          pd[c + 1] = (b1i - t1i) * s;
        }
      }
    }
  }
}

void Fft2d::transformRowsLegacy(ComplexGrid& grid, bool invert) const {
  for (int r = 0; r < rows_; ++r) {
    rowPlan_.transformReference(grid.rowPtr(r), invert);
  }
}

void Fft2d::transformColsLegacy(ComplexGrid& grid, bool invert) const {
  std::vector<std::complex<double>> col(static_cast<std::size_t>(rows_));
  for (int c = 0; c < cols_; ++c) {
    for (int r = 0; r < rows_; ++r) col[static_cast<std::size_t>(r)] = grid(r, c);
    colPlan_.transformReference(col.data(), invert);
    for (int r = 0; r < rows_; ++r) grid(r, c) = col[static_cast<std::size_t>(r)];
  }
}

void Fft2d::forward(ComplexGrid& grid) const {
  MOSAIC_CHECK(grid.rows() == rows_ && grid.cols() == cols_,
               "grid shape " << grid.rows() << "x" << grid.cols()
                             << " does not match plan " << rows_ << "x"
                             << cols_);
  MOSAIC_FAILPOINT_DATA("fft.forward",
                        reinterpret_cast<double*>(grid.data()),
                        grid.size() * 2);
  MOSAIC_SPAN("fft.forward");
  transformRows(grid, false);
  transformCols(grid, false, cols_);
}

void Fft2d::inverse(ComplexGrid& grid) const {
  MOSAIC_CHECK(grid.rows() == rows_ && grid.cols() == cols_,
               "grid shape mismatch in inverse FFT");
  MOSAIC_SPAN("fft.inverse");
  transformRows(grid, true);
  transformCols(grid, true, cols_);
}

void Fft2d::forwardLegacy(ComplexGrid& grid) const {
  MOSAIC_CHECK(grid.rows() == rows_ && grid.cols() == cols_,
               "grid shape mismatch in legacy forward FFT");
  MOSAIC_SPAN("fft.forward_legacy");
  transformRowsLegacy(grid, false);
  transformColsLegacy(grid, false);
}

void Fft2d::inverseLegacy(ComplexGrid& grid) const {
  MOSAIC_CHECK(grid.rows() == rows_ && grid.cols() == cols_,
               "grid shape mismatch in legacy inverse FFT");
  MOSAIC_SPAN("fft.inverse_legacy");
  transformRowsLegacy(grid, true);
  transformColsLegacy(grid, true);
}

ComplexGrid Fft2d::forwardReal(const RealGrid& grid) const {
  ComplexGrid out(rows_, cols_);
  forwardRealInto(grid, out);
  return out;
}

void Fft2d::forwardRealInto(const RealGrid& grid, ComplexGrid& out) const {
  MOSAIC_CHECK(grid.rows() == rows_ && grid.cols() == cols_,
               "grid shape mismatch in real forward FFT");
  MOSAIC_CHECK(out.rows() == rows_ && out.cols() == cols_,
               "output shape mismatch in real forward FFT");
  if (rows_ < 2 || cols_ < 2) {
    for (std::size_t i = 0; i < grid.size(); ++i) out.data()[i] = grid.data()[i];
    forward(out);
    return;
  }
  MOSAIC_SPAN("fft.forward_real");

  // Row pass: pack two real rows a, b as z = a + i b, transform once, and
  // split using conj-symmetry: A[k] = (Z[k] + conj(Z[n-k]))/2,
  // B[k] = (Z[k] - conj(Z[n-k]))/(2i).
  const int half = cols_ / 2;
  std::vector<std::complex<double>>& packed = packedRowScratch();
  packed.resize(static_cast<std::size_t>(cols_));
  for (int r = 0; r < rows_; r += 2) {
    const double* a = grid.rowPtr(r);
    const double* b = grid.rowPtr(r + 1);
    for (int c = 0; c < cols_; ++c) {
      packed[static_cast<std::size_t>(c)] = {a[c], b[c]};
    }
    rowPlan_.forward(packed.data());
    std::complex<double>* ra = out.rowPtr(r);
    std::complex<double>* rb = out.rowPtr(r + 1);
    ra[0] = {packed[0].real(), 0.0};
    rb[0] = {packed[0].imag(), 0.0};
    for (int k = 1; k < cols_; ++k) {
      const std::complex<double> z = packed[static_cast<std::size_t>(k)];
      const std::complex<double> zc =
          std::conj(packed[static_cast<std::size_t>(cols_ - k)]);
      ra[k] = 0.5 * (z + zc);
      const std::complex<double> d = z - zc;  // = 2i B[k]
      rb[k] = {0.5 * d.imag(), -0.5 * d.real()};
    }
  }

  // Column pass only over the non-redundant half [0, cols/2]; the rest
  // follows from Hermitian symmetry X(r, c) = conj(X(-r mod R, -c mod C)).
  transformCols(out, false, half + 1);
  for (int r = 0; r < rows_; ++r) {
    const int mr = (rows_ - r) % rows_;
    const std::complex<double>* src = out.rowPtr(mr);
    std::complex<double>* dst = out.rowPtr(r);
    for (int c = half + 1; c < cols_; ++c) {
      dst[c] = std::conj(src[cols_ - c]);
    }
  }
}

void Fft2d::inverseRealInto(ComplexGrid& spectrum, RealGrid& out) const {
  MOSAIC_CHECK(spectrum.rows() == rows_ && spectrum.cols() == cols_,
               "spectrum shape mismatch in real inverse FFT");
  MOSAIC_CHECK(out.rows() == rows_ && out.cols() == cols_,
               "output shape mismatch in real inverse FFT");
  if (rows_ < 2 || cols_ < 2) {
    inverse(spectrum);
    for (std::size_t i = 0; i < out.size(); ++i) {
      out.data()[i] = spectrum.data()[i].real();
    }
    return;
  }
  MOSAIC_SPAN("fft.inverse_real");

  // Inverse column pass over the stored half; after it, every row is a
  // 1-D Hermitian spectrum (Y(r, c) = conj(Y(r, C - c))), which lets the
  // row pass reconstruct its upper half locally and invert two real-output
  // rows per complex transform: z = ifft(Y0 + i Y1) has row0 = Re z,
  // row1 = Im z.
  const int half = cols_ / 2;
  transformCols(spectrum, true, half + 1);
  std::vector<std::complex<double>>& packed = packedRowScratch();
  packed.resize(static_cast<std::size_t>(cols_));
  for (int r = 0; r < rows_; r += 2) {
    const std::complex<double>* ya = spectrum.rowPtr(r);
    const std::complex<double>* yb = spectrum.rowPtr(r + 1);
    for (int k = 0; k <= half; ++k) {
      const std::complex<double> a = ya[k];
      const std::complex<double> b = yb[k];
      packed[static_cast<std::size_t>(k)] = {a.real() - b.imag(),
                                             a.imag() + b.real()};
    }
    for (int k = half + 1; k < cols_; ++k) {
      const std::complex<double> a = std::conj(ya[cols_ - k]);
      const std::complex<double> b = std::conj(yb[cols_ - k]);
      packed[static_cast<std::size_t>(k)] = {a.real() - b.imag(),
                                             a.imag() + b.real()};
    }
    rowPlan_.inverse(packed.data());
    double* oa = out.rowPtr(r);
    double* ob = out.rowPtr(r + 1);
    for (int c = 0; c < cols_; ++c) {
      oa[c] = packed[static_cast<std::size_t>(c)].real();
      ob[c] = packed[static_cast<std::size_t>(c)].imag();
    }
  }
}

namespace {

/// Append-only plan list: readers walk it lock-free, inserts take the
/// mutex and publish with a release store. Nodes are never freed (plans
/// live for the process lifetime, and the set of distinct shapes is tiny).
struct PlanNode {
  int rows;
  int cols;
  Fft2d plan;
  PlanNode* next;
};

std::atomic<PlanNode*> gPlanList{nullptr};
std::mutex gPlanInsertMutex;

const Fft2d* findPlan(PlanNode* head, int rows, int cols) {
  for (PlanNode* n = head; n != nullptr; n = n->next) {
    if (n->rows == rows && n->cols == cols) return &n->plan;
  }
  return nullptr;
}

}  // namespace

const Fft2d& fft2dFor(int rows, int cols) {
  if (const Fft2d* plan =
          findPlan(gPlanList.load(std::memory_order_acquire), rows, cols)) {
    return *plan;
  }
  std::lock_guard<std::mutex> lock(gPlanInsertMutex);
  PlanNode* head = gPlanList.load(std::memory_order_relaxed);
  if (const Fft2d* plan = findPlan(head, rows, cols)) return *plan;
  auto* node = new PlanNode{rows, cols, Fft2d(rows, cols), head};
  gPlanList.store(node, std::memory_order_release);
  return node->plan;
}

}  // namespace mosaic
