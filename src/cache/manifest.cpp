#include "cache/manifest.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/log.hpp"
#include "support/telemetry/json.hpp"
#include "support/telemetry/jsonin.hpp"

namespace mosaic {
namespace {

bool parseHex64(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtoull(s.c_str(), &end, 16);
  return end == s.c_str() + s.size();
}

}  // namespace

std::string manifestPath(const std::string& storeDir) {
  return storeDir + "/fingerprints.jsonl";
}

void writeFingerprintManifest(const std::string& path,
                              const std::vector<ManifestEntry>& entries) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    MOSAIC_CHECK(out.good(), "cannot write fingerprint manifest: " << tmp);
    for (const ManifestEntry& e : entries) {
      telemetry::JsonObject obj;
      obj.set("core_x", e.coreXNm);
      obj.set("core_y", e.coreYNm);
      obj.set("core", Fnv1a::hashHex(e.fp.coreHash));
      obj.set("window", Fnv1a::hashHex(e.fp.windowHash));
      obj.set("config", Fnv1a::hashHex(e.fp.configHash));
      obj.set("anchor_row", e.fp.anchorPxRow);
      obj.set("anchor_col", e.fp.anchorPxCol);
      obj.set("empty", e.fp.empty);
      out << obj.str() << "\n";
    }
    MOSAIC_CHECK(out.good(), "fingerprint manifest write failed: " << tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    MOSAIC_CHECK(false, "cannot publish fingerprint manifest: " << path);
  }
}

bool readFingerprintManifest(const std::string& path,
                             std::vector<ManifestEntry>* out) {
  out->clear();
  std::ifstream in(path);
  if (!in.good()) return false;
  std::string line;
  int lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    if (line.empty()) continue;
    telemetry::JsonValue v;
    try {
      v = telemetry::JsonValue::parse(line);
    } catch (const std::exception& e) {
      LOG_WARN("fingerprint manifest " << path << ":" << lineNo
                                       << " unparseable: " << e.what());
      out->clear();
      return false;
    }
    ManifestEntry e;
    e.coreXNm = v.intOr("core_x", 0);
    e.coreYNm = v.intOr("core_y", 0);
    e.fp.anchorPxRow = v.intOr("anchor_row", 0);
    e.fp.anchorPxCol = v.intOr("anchor_col", 0);
    e.fp.empty = v.boolOr("empty", false);
    if (!parseHex64(v.stringOr("core", ""), &e.fp.coreHash) ||
        !parseHex64(v.stringOr("window", ""), &e.fp.windowHash) ||
        !parseHex64(v.stringOr("config", ""), &e.fp.configHash)) {
      LOG_WARN("fingerprint manifest " << path << ":" << lineNo
                                       << " has malformed hashes");
      out->clear();
      return false;
    }
    out->push_back(e);
  }
  return true;
}

}  // namespace mosaic
