#pragma once
/// \file kernel_cache.hpp
/// Binary serialization of SOCS kernel sets. The TCC eigendecomposition
/// costs ~1 s per focus condition; persisting the result makes repeated
/// CLI invocations and CI runs start instantly. The format is a
/// little-endian private binary with a magic/version header; files are
/// validated on load and rejected on any mismatch.

#include <string>

#include "litho/kernels.hpp"

namespace mosaic {

/// Write a kernel set to a binary file.
void saveKernelSet(const std::string& path, const KernelSet& set);

/// Read a kernel set back. Throws InvalidArgument on malformed files or
/// version mismatch.
KernelSet loadKernelSet(const std::string& path);

/// Deterministic cache filename for an optics/focus combination, e.g.
/// "kernels_g256_f25.bin" (grid size + focus in tenths of nm).
std::string kernelCacheName(int gridSize, double focusNm);

}  // namespace mosaic
